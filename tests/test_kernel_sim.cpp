#include "gpusim/kernel_sim.hpp"

#include <gtest/gtest.h>

#include "gpusim/gpu_spmv.hpp"
#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::gpusim {
namespace {

const DeviceSpec kFermi = DeviceSpec::tesla_c2070();

template <class T>
Csr<T> imbalanced_matrix(index_t n, std::uint64_t seed) {
  // Wide row-length spread: the regime where pJDS beats ELLPACK-R.
  return spmvm::testing::random_csr<T>(n, n, 1, 64, seed);
}

TEST(KernelSim, UsefulLaneStepsEqualNnz) {
  const auto a = imbalanced_matrix<double>(512, 1);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto r = simulate(kFermi, e, EllpackKernel::r);
  EXPECT_EQ(r.stats.useful_lane_steps, static_cast<std::uint64_t>(a.nnz()));
  EXPECT_EQ(r.stats.flops, 2 * static_cast<std::uint64_t>(a.nnz()));

  PjdsOptions o;
  const auto p = simulate(kFermi, Pjds<double>::from_csr(a, o));
  EXPECT_EQ(p.stats.useful_lane_steps, static_cast<std::uint64_t>(a.nnz()));
}

TEST(KernelSim, PlainEllpackLoadsFill) {
  const auto a = imbalanced_matrix<double>(512, 2);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto plain = simulate(kFermi, e, EllpackKernel::plain);
  const auto r = simulate(kFermi, e, EllpackKernel::r);
  // Plain ELLPACK transfers the zero fill; ELLPACK-R does not.
  EXPECT_GT(plain.stats.matrix_bytes, r.stats.matrix_bytes);
  EXPECT_GE(r.gflops, plain.gflops);
}

TEST(KernelSim, PjdsReducesWarpSteps) {
  const auto a = imbalanced_matrix<double>(2048, 3);
  const auto r = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                          EllpackKernel::r);
  const auto p = simulate(kFermi, Pjds<double>::from_csr(a));
  // Sorting removes the warp tails: fewer reserved steps, higher
  // efficiency (Fig. 2b vs 2c).
  EXPECT_LT(p.stats.warp_steps, r.stats.warp_steps);
  EXPECT_GT(p.stats.warp_efficiency(), r.stats.warp_efficiency());
}

TEST(KernelSim, PjdsFasterInSinglePrecisionOnImbalancedMatrix) {
  const auto a = imbalanced_matrix<float>(4096, 4);
  const auto r = simulate(kFermi, Ellpack<float>::from_csr(a, 32),
                          EllpackKernel::r, {false});
  const auto p = simulate(kFermi, Pjds<float>::from_csr(a), {false});
  EXPECT_GT(p.gflops, r.gflops);
}

TEST(KernelSim, EccReducesBandwidthBoundThroughput) {
  const auto a = spmvm::testing::random_csr<double>(4096, 4096, 100, 140, 5);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto ecc_on = simulate(kFermi, e, EllpackKernel::r, {true});
  const auto ecc_off = simulate(kFermi, e, EllpackKernel::r, {false});
  EXPECT_GT(ecc_off.gflops, ecc_on.gflops);
  // At most the bandwidth ratio 120/91.
  EXPECT_LT(ecc_off.gflops / ecc_on.gflops, 120.0 / 91.0 + 0.01);
}

TEST(KernelSim, BandedMatrixHasLowAlpha) {
  // Narrow band: consecutive rows reuse the same RHS lines -> most
  // gathers hit in L2 and measured alpha approaches the ideal 1/N_nzr.
  const auto a = make_banded<double>(8192, 8);
  const auto r = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                          EllpackKernel::r);
  EXPECT_LT(r.stats.measured_alpha(8), 0.3);
}

TEST(KernelSim, RandomMatrixHasHighAlpha) {
  const auto a = make_random_uniform<double>(200000, 8, 6);
  const auto r = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                          EllpackKernel::r);
  // Scattered gathers over a 1.6 MB vector >> 768 kB L2: mostly misses.
  EXPECT_GT(r.stats.measured_alpha(8), 0.8);
}

TEST(KernelSim, NoL2MeansNoReuse) {
  const auto a = make_banded<double>(4096, 8);
  const auto fermi = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                              EllpackKernel::r);
  const auto c1060 = simulate(DeviceSpec::tesla_c1060(),
                              Ellpack<double>::from_csr(a, 32),
                              EllpackKernel::r);
  EXPECT_EQ(c1060.stats.rhs_line_hits, 0u);
  EXPECT_GT(c1060.stats.rhs_bytes, fermi.stats.rhs_bytes);
}

TEST(KernelSim, CsrScalarSlowerThanEllpackR) {
  const auto a = spmvm::testing::random_csr<double>(4096, 4096, 20, 40, 7);
  const auto csr = simulate_csr_scalar(kFermi, a);
  const auto er = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                           EllpackKernel::r);
  EXPECT_LT(csr.gflops, er.gflops);
}

TEST(KernelSim, KernelIsBandwidthOrIssueBound) {
  const auto a = imbalanced_matrix<double>(1024, 8);
  const auto r = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                          EllpackKernel::r);
  EXPECT_NEAR(r.seconds,
              std::max(r.mem_seconds, r.issue_seconds) + kFermi.kernel_launch_s,
              1e-12);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_LT(r.gflops, kFermi.peak_flops(Precision::dp) / 1e9);
}

TEST(KernelSim, SmallMatrixLosesBandwidth) {
  // Strong-scaling regime: a tiny per-GPU chunk cannot saturate the
  // memory system (Fig. 5a breakdown).
  const auto small = spmvm::testing::random_csr<double>(512, 512, 100, 140, 9);
  const auto big = spmvm::testing::random_csr<double>(65536, 65536, 100, 140, 9);
  const auto rs = simulate(kFermi, Ellpack<double>::from_csr(small, 32),
                           EllpackKernel::r);
  const auto rb = simulate(kFermi, Ellpack<double>::from_csr(big, 32),
                           EllpackKernel::r);
  EXPECT_LT(rs.gflops, rb.gflops);
}

TEST(KernelSim, SlicedEllMatchesEllpackRTraffic) {
  const auto a = imbalanced_matrix<double>(1024, 10);
  const auto s = simulate(kFermi, SlicedEll<double>::from_csr(a, 32));
  const auto r = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                          EllpackKernel::r);
  // Same kernel semantics when σ = 1: identical useful work and
  // comparable traffic.
  EXPECT_EQ(s.stats.useful_lane_steps, r.stats.useful_lane_steps);
  EXPECT_EQ(s.stats.warp_steps, r.stats.warp_steps);
}

TEST(KernelSim, SortedSlicedEllApproachesPjds) {
  const auto a = imbalanced_matrix<double>(2048, 11);
  const auto sorted = simulate(
      kFermi, SlicedEll<double>::from_csr(a, 32, a.n_rows, PermuteColumns::yes));
  const auto p = simulate(kFermi, Pjds<double>::from_csr(a));
  EXPECT_EQ(sorted.stats.warp_steps, p.stats.warp_steps);
}

TEST(SimulateFormat, DispatchesAllKinds) {
  const auto a = spmvm::testing::random_csr<double>(256, 256, 1, 16, 12);
  for (const FormatKind kind :
       {FormatKind::ellpack, FormatKind::ellpack_r, FormatKind::pjds,
        FormatKind::sliced_ell, FormatKind::csr_scalar}) {
    const auto r = simulate_format(kFermi, a, kind);
    EXPECT_GT(r.gflops, 0.0) << to_string(kind);
    EXPECT_GT(device_bytes(a, kind), 0u) << to_string(kind);
  }
}

TEST(DeviceBytes, PjdsSmallerThanEllpackOnImbalanced) {
  const auto a = imbalanced_matrix<double>(1024, 13);
  EXPECT_LT(device_bytes(a, FormatKind::pjds),
            device_bytes(a, FormatKind::ellpack_r));
}

}  // namespace
}  // namespace spmvm::gpusim
