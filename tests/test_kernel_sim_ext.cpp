// Tests for the simulator extensions: the CSR-vector kernel and the
// C1060 texture-cache handling of pJDS's col_start[].
#include <gtest/gtest.h>

#include "gpusim/gpu_spmv.hpp"
#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::gpusim {
namespace {

const DeviceSpec kFermi = DeviceSpec::tesla_c2070();

TEST(CsrVector, BeatsScalarOnLongRows) {
  const auto a = spmvm::testing::random_csr<double>(2048, 2048, 100, 160, 1);
  const auto vec = simulate_csr_vector(kFermi, a);
  const auto scal = simulate_csr_scalar(kFermi, a);
  EXPECT_GT(vec.gflops, 2.0 * scal.gflops);
}

TEST(CsrVector, WastefulOnShortRows) {
  // One warp per 4-entry row: 28 idle lanes plus the reduction steps.
  const auto a = spmvm::testing::random_csr<double>(20000, 20000, 4, 4, 2);
  const auto vec = simulate_csr_vector(kFermi, a);
  const auto er = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                           EllpackKernel::r);
  EXPECT_LT(vec.gflops, er.gflops);
  EXPECT_LT(vec.stats.warp_efficiency(), 0.25);
}

TEST(CsrVector, UsefulWorkEqualsNnz) {
  const auto a = spmvm::testing::random_csr<double>(512, 512, 0, 40, 3);
  const auto r = simulate_csr_vector(kFermi, a);
  EXPECT_EQ(r.stats.useful_lane_steps, static_cast<std::uint64_t>(a.nnz()));
}

TEST(CsrVector, CompetitiveWithEllpackROnUniformLongRows) {
  const auto a = make_random_uniform<double>(4096, 128, 4);
  const auto vec = simulate_csr_vector(kFermi, a);
  const auto er = simulate(kFermi, Ellpack<double>::from_csr(a, 32),
                           EllpackKernel::r);
  EXPECT_GT(vec.gflops, 0.5 * er.gflops);
}

TEST(ColStartTexture, IrrelevantOnFermi) {
  // The L2 covers col_start[] on GF100: the texture flag changes nothing.
  const auto a = spmvm::testing::random_csr<double>(1024, 1024, 1, 30, 5);
  const auto p = Pjds<double>::from_csr(a);
  SimOptions with_tex, without_tex;
  without_tex.col_start_in_texture = false;
  EXPECT_DOUBLE_EQ(simulate(kFermi, p, with_tex).seconds,
                   simulate(kFermi, p, without_tex).seconds);
}

TEST(ColStartTexture, RequiredOnC1060) {
  // Paper: "Here it is also necessary to map the array holding the
  // column starting offsets (col_start[]) to the texture cache."
  const auto dev = DeviceSpec::tesla_c1060();
  const auto a = spmvm::testing::random_csr<double>(4096, 4096, 1, 24, 6);
  const auto p = Pjds<double>::from_csr(a);
  SimOptions with_tex, without_tex;
  without_tex.col_start_in_texture = false;
  const auto mapped = simulate(dev, p, with_tex);
  const auto unmapped = simulate(dev, p, without_tex);
  EXPECT_GT(unmapped.stats.dram_bytes(), mapped.stats.dram_bytes());
  EXPECT_LE(unmapped.gflops, mapped.gflops);
}

TEST(FormatKind, CsrVectorDispatches) {
  const auto a = spmvm::testing::random_csr<double>(256, 256, 1, 10, 7);
  const auto r = simulate_format(kFermi, a, FormatKind::csr_vector);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_STREQ(to_string(FormatKind::csr_vector), "CSR-vector");
}

TEST(ClusterFormat, PjdsOptionChangesDeviceBytes) {
  const auto a = spmvm::testing::random_csr<double>(1024, 1024, 1, 40, 8);
  EXPECT_LT(device_bytes(a, FormatKind::pjds),
            device_bytes(a, FormatKind::ellpack_r));
}

}  // namespace
}  // namespace spmvm::gpusim
