#include "gpusim/l2_cache.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spmvm::gpusim {
namespace {

TEST(L2Cache, ColdMissThenHit) {
  L2Cache c(1024, 128, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(127));   // same line
  EXPECT_FALSE(c.access(128));  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(L2Cache, DisabledCacheAlwaysMisses) {
  L2Cache c(0, 128, 16);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(c.access(0));
  EXPECT_EQ(c.misses(), 10u);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(L2Cache, LruEvictionWithinSet) {
  // 2 sets x 2 ways of 128B lines = 512B. Lines 0, 2, 4 map to set 0.
  L2Cache c(512, 128, 2);
  EXPECT_FALSE(c.access_line(0));
  EXPECT_FALSE(c.access_line(2));
  EXPECT_TRUE(c.access_line(0));   // 0 is now MRU
  EXPECT_FALSE(c.access_line(4));  // evicts 2 (LRU)
  EXPECT_TRUE(c.access_line(0));
  EXPECT_FALSE(c.access_line(2));  // was evicted
}

TEST(L2Cache, CapacityEviction) {
  // 4 KiB cache, working set 8 KiB: second sweep must keep missing.
  L2Cache c(4096, 128, 4);
  for (std::uint64_t line = 0; line < 64; ++line) c.access_line(line);
  const auto misses_first = c.misses();
  for (std::uint64_t line = 0; line < 64; ++line) c.access_line(line);
  EXPECT_EQ(misses_first, 64u);
  EXPECT_EQ(c.misses(), 128u);  // LRU + sequential sweep = no reuse
}

TEST(L2Cache, FitsWorkingSetSecondSweepHits) {
  L2Cache c(16384, 128, 4);  // 128 lines capacity, 64-line working set
  for (std::uint64_t line = 0; line < 64; ++line) c.access_line(line);
  for (std::uint64_t line = 0; line < 64; ++line)
    EXPECT_TRUE(c.access_line(line));
}

TEST(L2Cache, ResetClearsState) {
  L2Cache c(1024, 128, 2);
  c.access(0);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.access(0));  // cold again
}

TEST(L2Cache, HitRate) {
  L2Cache c(1024, 128, 2);
  c.access(0);
  c.access(0);
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.75);
}

TEST(L2Cache, RejectsBadGeometry) {
  EXPECT_THROW(L2Cache(128, 0, 4), Error);
  EXPECT_THROW(L2Cache(128, 128, 0), Error);
  EXPECT_THROW(L2Cache(128, 128, 2), Error);  // < 1 set
}

TEST(L2Cache, FermiGeometryAccepted) {
  L2Cache c(768 * 1024, 128, 16);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(64));
}

}  // namespace
}  // namespace spmvm::gpusim
