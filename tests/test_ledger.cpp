// Roofline efficiency ledger: record folding and key algebra, the Eq. 1
// efficiency cross-check against perfmodel::evaluate (the EXPERIMENTS.md
// model-vs-sim deviation table), one-shot anomaly semantics on an
// artificially slowed kernel, and the exporters (table / JSON /
// Prometheus gauges).
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "gpusim/gpu_spmv.hpp"
#include "matgen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/roofline.hpp"
#include "obs/trace_export.hpp"
#include "perfmodel/model_eval.hpp"
#include "sparse/footprint.hpp"
#include "sparse/spmv_host.hpp"
#include "test_helpers.hpp"

namespace spmvm {
namespace {

/// Enable the ledger for one test, from a clean slate, restoring the
/// previous enable state (and default anomaly knobs) on exit.
class ScopedLedger {
 public:
  explicit ScopedLedger(bool on = true) : prev_(obs::ledger_enabled()) {
    obs::reset_ledger();
    obs::set_ledger_enabled(on);
  }
  ~ScopedLedger() {
    obs::set_ledger_enabled(prev_);
    obs::set_anomaly_options(obs::AnomalyOptions{});
    obs::reset_ledger();
  }

 private:
  bool prev_;
};

const obs::EffRecord* find_record(const std::vector<obs::EffRecord>& records,
                                  obs::RoofLane lane, const std::string& fmt,
                                  const std::string& phase) {
  for (const obs::EffRecord& r : records)
    if (r.lane == lane && r.format == fmt && r.phase == phase) return &r;
  return nullptr;
}

/// Minimal JSON structure scanner (see test_metrics_export).
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"')
      in_string = true;
    else if (c == '{' || c == '[')
      ++depth;
    else if (c == '}' || c == ']')
      if (--depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

// ---- roofline spec --------------------------------------------------------

TEST(Roofline, PredictedSecondsUsesLaneBandwidth) {
  obs::RooflineSpec spec;
  spec.bw_gbs[static_cast<int>(obs::RoofLane::net)] = 2.0;
  obs::WorkDesc w;
  w.bytes = 4'000'000'000ull;  // 4 GB over 2 GB/s -> 2 s
  EXPECT_DOUBLE_EQ(obs::predicted_seconds(spec, obs::RoofLane::net, w), 2.0);
}

TEST(Roofline, ExplicitPredictionWins) {
  obs::RooflineSpec spec;
  obs::WorkDesc w;
  w.bytes = 1'000'000'000ull;
  w.predicted_seconds = 0.125;
  EXPECT_DOUBLE_EQ(obs::predicted_seconds(spec, obs::RoofLane::host, w),
                   0.125);
}

TEST(Roofline, NoWorkMeansNoPrediction) {
  EXPECT_DOUBLE_EQ(
      obs::predicted_seconds(obs::RooflineSpec{}, obs::RoofLane::host,
                             obs::WorkDesc{}),
      0.0);
}

// ---- record folding -------------------------------------------------------

TEST(Ledger, DisabledRecordsNothing) {
  ScopedLedger led(false);
  obs::WorkDesc w;
  w.bytes = 100;
  w.predicted_seconds = 1e-3;
  obs::ledger_record(obs::RoofLane::host, "off", "spmv", 2e-3, w);
  obs::ledger_residual("off", 1, 0.5);
  EXPECT_TRUE(obs::ledger_snapshot().empty());
  EXPECT_TRUE(obs::residual_series().empty());
}

TEST(Ledger, HostKernelPopulatesRecord) {
  ScopedLedger led;
  const auto a = testing::random_csr<double>(64, 64, 1, 8, 7);
  std::vector<double> x(64, 1.0), y(64, 0.0);
  constexpr int kCalls = 3;
  for (int i = 0; i < kCalls; ++i)
    spmv(a, std::span<const double>(x), std::span<double>(y));

  const auto records = obs::ledger_snapshot();
  const obs::EffRecord* r =
      find_record(records, obs::RoofLane::host, "csr", "spmv");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(r->key(), "host/csr/spmv");

  // Byte accounting matches the kernel wrappers: stored footprint plus
  // one RHS read and one LHS write per call.
  const double bytes_per_call =
      static_cast<double>(footprint(a).total_bytes(sizeof(double))) +
      static_cast<double>(a.n_rows + a.n_cols) * sizeof(double);
  EXPECT_DOUBLE_EQ(r->bytes, kCalls * bytes_per_call);
  EXPECT_DOUBLE_EQ(r->flops, kCalls * 2.0 * static_cast<double>(a.nnz()));
  EXPECT_NEAR(r->mean_alpha(),
              static_cast<double>(a.n_rows) / static_cast<double>(a.nnz()),
              1e-12);
  EXPECT_GT(r->seconds, 0.0);
  EXPECT_GT(r->predicted_s, 0.0);
  EXPECT_GT(r->efficiency(), 0.0);
  EXPECT_GT(r->achieved_gbs(), 0.0);
}

TEST(Ledger, ResetClearsRecordsAndResiduals) {
  ScopedLedger led;
  obs::WorkDesc w;
  w.bytes = 10;
  obs::ledger_record(obs::RoofLane::net, "x", "y", 1e-3, w);
  obs::ledger_residual("cg", 1, 0.25);
  EXPECT_FALSE(obs::ledger_snapshot().empty());
  EXPECT_FALSE(obs::residual_series().empty());
  obs::reset_ledger();
  EXPECT_TRUE(obs::ledger_snapshot().empty());
  EXPECT_TRUE(obs::residual_series().empty());
}

// ---- Eq. 1 cross-check ----------------------------------------------------

// The ledger's device-lane efficiency must reproduce the perfmodel
// model-vs-sim table: simulate() records predicted = flops / gflops_model
// with gflops_model evaluated at the simulator's measured alpha — exactly
// perfmodel::evaluate's algebra — so efficiency == gflops_sim /
// gflops_model and the EXPERIMENTS.md deviation is 100·(1/eff - 1).
TEST(Ledger, GpusimEfficiencyMatchesPerfmodel) {
  ScopedLedger led;
  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const auto a = testing::random_csr<double>(512, 512, 1, 64, 3);

  const perfmodel::ModelVsSim m =
      perfmodel::evaluate(dev, a, gpusim::FormatKind::pjds, true);

  const auto records = obs::ledger_snapshot();
  const obs::EffRecord* r =
      find_record(records, obs::RoofLane::device, "pjds", "spmv");
  ASSERT_NE(r, nullptr);
  ASSERT_GT(m.gflops_model, 0.0);
  const double expected_eff = m.gflops_sim / m.gflops_model;
  EXPECT_NEAR(r->efficiency(), expected_eff, 1e-9 * expected_eff + 1e-12);
  const double deviation_from_ledger = 100.0 * (1.0 / r->efficiency() - 1.0);
  EXPECT_NEAR(deviation_from_ledger, m.model_vs_sim_pct(),
              1e-6 * std::abs(m.model_vs_sim_pct()) + 1e-9);
  EXPECT_NEAR(r->mean_alpha(), m.alpha_measured, 1e-12);
}

// ---- anomaly detection ----------------------------------------------------

TEST(Ledger, SustainedSlowdownFiresExactlyOnce) {
  ScopedLedger led;
  obs::AnomalyOptions opt;
  opt.warmup = 4;
  obs::set_anomaly_options(opt);
  obs::counter("anomaly.total").reset();

  obs::WorkDesc w;
  w.bytes = 1'000'000;
  w.predicted_seconds = 0.5e-3;

  // Warm the baseline at efficiency 0.5 ...
  for (int i = 0; i < 8; ++i)
    obs::ledger_record(obs::RoofLane::host, "slowed", "spmv", 1.0e-3, w);
  EXPECT_EQ(obs::counter("anomaly.total").value(), 0u);

  // ... then inject an artificially slowed kernel (efficiency 0.25,
  // far outside max(rel_tol·mean, k·stddev)), sustained for many calls.
  for (int i = 0; i < 16; ++i)
    obs::ledger_record(obs::RoofLane::host, "slowed", "spmv", 2.0e-3, w);

  EXPECT_EQ(obs::counter("anomaly.total").value(), 1u);
  const std::vector<obs::EffRecord> snap = obs::ledger_snapshot();
  const obs::EffRecord* r =
      find_record(snap, obs::RoofLane::host, "slowed", "spmv");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->anomalies, 1u);
  EXPECT_TRUE(r->in_anomaly);
  // Anomalous samples stayed out of the baseline.
  EXPECT_NEAR(r->eff_mean, 0.5, 1e-12);

  // Recovery clears the latch; a second sustained slowdown fires again.
  for (int i = 0; i < 4; ++i)
    obs::ledger_record(obs::RoofLane::host, "slowed", "spmv", 1.0e-3, w);
  EXPECT_FALSE(find_record(obs::ledger_snapshot(), obs::RoofLane::host,
                           "slowed", "spmv")
                   ->in_anomaly);
  for (int i = 0; i < 4; ++i)
    obs::ledger_record(obs::RoofLane::host, "slowed", "spmv", 2.0e-3, w);
  EXPECT_EQ(obs::counter("anomaly.total").value(), 2u);
}

TEST(Ledger, NoiseWithinWindowDoesNotFire) {
  ScopedLedger led;
  obs::AnomalyOptions opt;
  opt.warmup = 4;
  obs::set_anomaly_options(opt);
  obs::counter("anomaly.total").reset();

  obs::WorkDesc w;
  w.predicted_seconds = 0.5e-3;
  for (int i = 0; i < 8; ++i)
    obs::ledger_record(obs::RoofLane::host, "noisy", "spmv", 1.0e-3, w);
  // 2% slower: inside the rel_tol=5% window.
  for (int i = 0; i < 8; ++i)
    obs::ledger_record(obs::RoofLane::host, "noisy", "spmv", 1.02e-3, w);
  EXPECT_EQ(obs::counter("anomaly.total").value(), 0u);
}

// ---- exporters ------------------------------------------------------------

TEST(Ledger, RooflineJsonIsSchemaVersionedAndWellFormed) {
  ScopedLedger led;
  obs::WorkDesc w;
  w.bytes = 4096;
  w.flops = 1024;
  w.predicted_seconds = 1e-6;
  obs::ledger_record(obs::RoofLane::device, "pjds", "spmv", 2e-6, w);
  obs::ledger_residual("cg", 1, 0.5);
  obs::ledger_residual("cg", 2, 0.25);

  const std::string json = obs::roofline_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
  EXPECT_NE(json.find("\"pjds\""), std::string::npos);
  EXPECT_NE(json.find("\"residuals\""), std::string::npos);
  EXPECT_NE(json.find("\"solver\": \"cg\""), std::string::npos);
  // Metadata carries the machine fingerprint key/value pairs.
  EXPECT_NE(json.find("\"metadata\": {"), std::string::npos);
}

TEST(Ledger, RooflineTableListsRecords) {
  ScopedLedger led;
  obs::WorkDesc w;
  w.bytes = 4096;
  w.predicted_seconds = 1e-6;
  obs::ledger_record(obs::RoofLane::pcie, "vector", "transfer", 2e-6, w);
  const std::string table = obs::roofline_table();
  EXPECT_NE(table.find("pcie"), std::string::npos);
  EXPECT_NE(table.find("vector"), std::string::npos);
  EXPECT_NE(table.find("transfer"), std::string::npos);
}

TEST(Ledger, PublishedGaugesReachPrometheus) {
  ScopedLedger led;
  obs::WorkDesc w;
  w.bytes = 1'000'000;
  w.predicted_seconds = 1e-4;
  obs::ledger_record(obs::RoofLane::net, "task_mode", "sends", 2e-4, w);
  obs::publish_roofline_gauges();

  auto& g = obs::gauge(
      "roofline.efficiency{lane=net,format=task_mode,phase=sends}");
  EXPECT_NEAR(g.value(), 0.5, 1e-12);

  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("spmvm_roofline_efficiency{"), std::string::npos);
  EXPECT_NE(text.find("# HELP spmvm_roofline_efficiency"), std::string::npos);
}

TEST(Ledger, ResidualSeriesKeepsOrderAndTimestamps) {
  ScopedLedger led;
  obs::ledger_residual("bicgstab", 1, 1.0);
  obs::ledger_residual("bicgstab", 2, 0.1);
  const auto series = obs::residual_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].solver, "bicgstab");
  EXPECT_EQ(series[0].iteration, 1u);
  EXPECT_LE(series[0].t_s, series[1].t_s);
}

}  // namespace
}  // namespace spmvm
