// Fingerprint checks: each synthetic matrix must reproduce the published
// properties the experiments depend on (N_nzr, spread, structure, and the
// Table I data-reduction band).
#include "matgen/generators.hpp"

#include <gtest/gtest.h>

#include "sparse/footprint.hpp"
#include "matgen/suite.hpp"
#include "sparse/convert.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

GenConfig cfg(double scale) {
  GenConfig c;
  c.scale = scale;
  return c;
}

double reduction(const Csr<double>& a) {
  return data_reduction_percent(Pjds<double>::from_csr(a),
                                Ellpack<double>::from_csr(a, 32));
}

TEST(Hmep, Fingerprint) {
  const auto a = make_hmep<double>(cfg(64));
  a.validate();
  const auto s = compute_stats(a);
  EXPECT_NEAR(s.avg_row_len, 15.0, 2.0);      // paper: ~15
  EXPECT_LE(s.max_row_len, 26);
  // Table I: 36% data reduction.
  EXPECT_NEAR(reduction(a), 36.0, 8.0);
}

TEST(Hmep, HasContiguousOffDiagonals) {
  const auto a = make_hmep<double>(cfg(64));
  const index_t stride = 15000 / 64;
  // Count rows carrying an entry exactly at i +/- stride: the phonon
  // off-diagonal must be populated over long contiguous runs.
  index_t with_offdiag = 0;
  for (index_t i = stride; i < a.n_rows - stride; ++i) {
    const auto row = a.dense_row(i);
    if (row[static_cast<std::size_t>(i + stride)] != 0.0 ||
        row[static_cast<std::size_t>(i - stride)] != 0.0)
      ++with_offdiag;
  }
  EXPECT_GT(with_offdiag, (a.n_rows - 2 * stride) / 2);
}

TEST(Samg, Fingerprint) {
  const auto a = make_samg<double>(cfg(64));
  a.validate();
  const auto s = compute_stats(a);
  EXPECT_NEAR(s.avg_row_len, 7.0, 1.5);  // paper: ~7
  // Longest row more than 4x the smallest, short rows dominate.
  EXPECT_GT(static_cast<double>(s.max_row_len), 4.0 * s.min_row_len);
  EXPECT_GT(s.row_len_histogram.relative_share(s.min_row_len + 1),
            s.row_len_histogram.relative_share(s.max_row_len));
  // Table I: 68.4% data reduction — by far the largest of the suite.
  EXPECT_NEAR(reduction(a), 68.4, 10.0);
}

TEST(Dlr1, Fingerprint) {
  const auto a = make_dlr1<double>(cfg(8));
  a.validate();
  EXPECT_EQ(a.n_rows % 6, 0);
  const auto s = compute_stats(a);
  EXPECT_NEAR(s.avg_row_len, 144.0, 15.0);  // paper: ~144
  // Narrow spread: relative width ~2, 80% of rows at >= 0.8 * max.
  EXPECT_LT(s.relative_width, 3.0);
  EXPECT_GT(s.row_len_histogram.share_at_least(
                static_cast<index_t>(0.8 * s.max_row_len)),
            0.6);
  // Table I: 17.5% — the smallest reduction of the suite.
  EXPECT_NEAR(reduction(a), 17.5, 7.0);
}

TEST(Dlr2, FingerprintAndDenseBlocks) {
  const auto a = make_dlr2<double>(cfg(8));
  a.validate();
  const auto s = compute_stats(a);
  EXPECT_NEAR(s.avg_row_len, 315.0, 35.0);  // paper: ~315
  EXPECT_NEAR(reduction(a), 48.0, 10.0);    // Table I
  // Entirely dense 5x5 subblocks: row lengths are multiples of 5 and the
  // five rows of a block share identical sparsity.
  for (index_t i = 0; i < std::min<index_t>(a.n_rows, 200); ++i)
    EXPECT_EQ(a.row_len(i) % 5, 0) << "row " << i;
  for (index_t blk = 0; blk < 5; ++blk) {
    const index_t base = blk * 5;
    for (index_t u = 1; u < 5; ++u)
      EXPECT_EQ(a.row_len(base), a.row_len(base + u));
  }
}

TEST(Uhbr, Fingerprint) {
  const auto a = make_uhbr<double>(cfg(64));
  a.validate();
  const auto s = compute_stats(a);
  EXPECT_NEAR(s.avg_row_len, 123.0, 15.0);  // paper: ~123
}

TEST(PaperSuite, ReductionOrderingMatchesTableOne) {
  // sAMG > DLR2 > HMEp > DLR1 (68.4 > 48.0 > 36.0 > 17.5).
  const auto dlr1 = reduction(make_dlr1<double>(cfg(16)));
  const auto dlr2 = reduction(make_dlr2<double>(cfg(16)));
  const auto hmep = reduction(make_hmep<double>(cfg(64)));
  const auto samg = reduction(make_samg<double>(cfg(64)));
  EXPECT_GT(samg, dlr2);
  EXPECT_GT(dlr2, hmep);
  EXPECT_GT(hmep, dlr1);
}

TEST(PaperSuite, DeterministicAcrossCalls) {
  const auto a = make_samg<double>(cfg(256));
  const auto b = make_samg<double>(cfg(256));
  EXPECT_TRUE(structurally_equal(a, b));
}

TEST(PaperSuite, SeedChangesMatrix) {
  GenConfig c1 = cfg(256), c2 = cfg(256);
  c2.seed = 999;
  EXPECT_FALSE(structurally_equal(make_samg<double>(c1),
                                  make_samg<double>(c2)));
}

TEST(Suite, TableOneSuiteContainsFourMatrices) {
  const auto suite = table1_suite(256);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "DLR1");
  EXPECT_EQ(suite[3].name, "sAMG");
  for (const auto& m : suite) {
    m.matrix.validate();
    EXPECT_GT(m.paper.dimension, 0);
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_named("NOPE", 64), Error);
}

TEST(Poisson2d, StencilStructure) {
  const auto a = make_poisson2d<double>(10, 10);
  a.validate();
  EXPECT_EQ(a.n_rows, 100);
  EXPECT_TRUE(is_symmetric(a));
  // Interior row: 5 entries; corner: 3.
  EXPECT_EQ(a.row_len(5 * 10 + 5), 5);
  EXPECT_EQ(a.row_len(0), 3);
}

TEST(Poisson3d, StencilStructure) {
  const auto a = make_poisson3d<double>(5, 5, 5);
  a.validate();
  EXPECT_EQ(a.n_rows, 125);
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_EQ(a.max_row_len(), 7);
}

TEST(Banded, Structure) {
  const auto a = make_banded<double>(50, 3);
  a.validate();
  EXPECT_EQ(a.max_row_len(), 7);
  EXPECT_EQ(a.row_len(0), 4);  // clipped at the boundary
  // Symmetric and diagonally dominant by construction (SPD for solvers).
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_DOUBLE_EQ(a.dense_row(10)[10], 7.0);
}

TEST(RandomUniform, ExactRowLength) {
  const auto a = make_random_uniform<double>(200, 12, 7);
  a.validate();
  EXPECT_EQ(a.min_row_len(), 12);
  EXPECT_EQ(a.max_row_len(), 12);
  // Diagonal present in every row.
  for (index_t i = 0; i < a.n_rows; ++i)
    EXPECT_NE(a.dense_row(i)[static_cast<std::size_t>(i)], 0.0);
}

TEST(Powerlaw, HeavyTail) {
  const auto a = make_powerlaw<double>(2000, 8.0, 100, 11);
  a.validate();
  const auto s = compute_stats(a);
  EXPECT_GT(s.max_row_len, 4 * static_cast<index_t>(s.avg_row_len));
  EXPECT_LE(s.max_row_len, 100);
}

}  // namespace
}  // namespace spmvm
