#include "sparse/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(MatrixMarket, ReadsGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 7.25\n");
  const auto a = read_matrix_market<double>(in);
  a.validate();
  EXPECT_EQ(a.n_rows, 3);
  EXPECT_EQ(a.n_cols, 4);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.dense_row(1)[2], -2.0);
}

TEST(MatrixMarket, ReadsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 1.0\n");
  const auto a = read_matrix_market<double>(in);
  EXPECT_EQ(a.nnz(), 3);  // (1,0), (0,1), (2,2)
  EXPECT_DOUBLE_EQ(a.dense_row(0)[1], 5.0);
  EXPECT_DOUBLE_EQ(a.dense_row(1)[0], 5.0);
}

TEST(MatrixMarket, ReadsSkewSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const auto a = read_matrix_market<double>(in);
  EXPECT_DOUBLE_EQ(a.dense_row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(a.dense_row(0)[1], -3.0);
}

TEST(MatrixMarket, ReadsPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const auto a = read_matrix_market<double>(in);
  EXPECT_DOUBLE_EQ(a.dense_row(0)[1], 1.0);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("1 1 0\n");
  EXPECT_THROW(read_matrix_market<double>(in), Error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market<double>(in), Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market<double>(in), Error);
}

TEST(MatrixMarket, RoundTripPreservesMatrix) {
  const auto a = testing::random_csr<double>(30, 25, 0, 6, 42);
  std::stringstream buffer;
  write_matrix_market(buffer, a);
  const auto b = read_matrix_market<double>(buffer);
  EXPECT_TRUE(structurally_equal(a, b));
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto a = testing::random_csr<double>(10, 10, 1, 3, 43);
  const std::string path = ::testing::TempDir() + "/spmvm_roundtrip.mtx";
  write_matrix_market_file(path, a);
  const auto b = read_matrix_market_file<double>(path);
  EXPECT_TRUE(structurally_equal(a, b));
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file<double>("/nonexistent/foo.mtx"), Error);
}

}  // namespace
}  // namespace spmvm
