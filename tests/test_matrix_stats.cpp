#include "sparse/matrix_stats.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace spmvm {
namespace {

TEST(MatrixStats, BasicQuantities) {
  Coo<double> coo(4, 4);
  for (index_t j = 0; j < 4; ++j) coo.add(0, j, 1.0);  // length 4
  coo.add(1, 0, 1.0);                                  // length 1
  coo.add(2, 1, 1.0);
  coo.add(2, 2, 1.0);  // length 2
  coo.add(3, 3, 1.0);  // length 1
  const auto a = Csr<double>::from_coo(std::move(coo));
  const auto s = compute_stats(a);
  EXPECT_EQ(s.n_rows, 4);
  EXPECT_EQ(s.nnz, 8);
  EXPECT_EQ(s.min_row_len, 1);
  EXPECT_EQ(s.max_row_len, 4);
  EXPECT_DOUBLE_EQ(s.avg_row_len, 2.0);
  EXPECT_DOUBLE_EQ(s.relative_width, 4.0);
  EXPECT_EQ(s.row_len_histogram.count(1), 2u);
  EXPECT_EQ(s.row_len_histogram.count(2), 1u);
  EXPECT_EQ(s.row_len_histogram.count(4), 1u);
}

TEST(MatrixStats, HistogramTotalsMatchRows) {
  const auto a = testing::random_csr<double>(500, 500, 0, 15, 3);
  const auto s = compute_stats(a);
  EXPECT_EQ(s.row_len_histogram.total(), 500u);
  EXPECT_NEAR(s.row_len_histogram.mean(), s.avg_row_len, 1e-12);
}

TEST(MatrixStats, ColDistanceOfDiagonalMatrixIsZero) {
  Coo<double> coo(10, 10);
  for (index_t i = 0; i < 10; ++i) coo.add(i, i, 1.0);
  const auto s = compute_stats(Csr<double>::from_coo(std::move(coo)));
  EXPECT_DOUBLE_EQ(s.mean_col_distance, 0.0);
}

TEST(MatrixStats, ColDistanceOfOffDiagonal) {
  Coo<double> coo(10, 10);
  for (index_t i = 0; i < 5; ++i) coo.add(i, i + 5, 1.0);
  const auto s = compute_stats(Csr<double>::from_coo(std::move(coo)));
  EXPECT_DOUBLE_EQ(s.mean_col_distance, 5.0);
}

TEST(MatrixStats, RelativeWidthZeroWhenEmptyRowExists) {
  Coo<double> coo(3, 3);
  coo.add(0, 0, 1.0);
  const auto s = compute_stats(Csr<double>::from_coo(std::move(coo)));
  EXPECT_DOUBLE_EQ(s.relative_width, 0.0);
}

TEST(MatrixStats, FormatStatsMentionsKeyNumbers) {
  const auto a = testing::random_csr<double>(100, 100, 2, 8, 5);
  const auto s = compute_stats(a);
  const std::string line = format_stats("TEST", s);
  EXPECT_NE(line.find("TEST"), std::string::npos);
  EXPECT_NE(line.find("100"), std::string::npos);
}

}  // namespace
}  // namespace spmvm
