// Metrics registry + exporters: counter/gauge/histogram semantics,
// Chrome-trace JSON well-formedness, Prometheus text format, bench.json
// reports, and an end-to-end traced solver + distributed spMVM run.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/spmv_modes.hpp"
#include "matgen/generators.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "solver/cg.hpp"
#include "solver/kernels.hpp"

namespace spmvm {
namespace {

// ---- helpers --------------------------------------------------------------

/// Minimal JSON structure scanner: balanced braces/brackets outside
/// strings, no trailing garbage. Catches malformed emitter output
/// without a full parser.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

class ScopedTracing {
 public:
  explicit ScopedTracing(bool on) : prev_(obs::tracing_enabled()) {
    obs::clear_trace();
    obs::set_tracing(on);
  }
  ~ScopedTracing() {
    obs::set_tracing(prev_);
    obs::clear_trace();
  }

 private:
  bool prev_;
};

// ---- registry semantics ---------------------------------------------------

TEST(Metrics, CounterAccumulatesAndResets) {
  auto& c = obs::counter("test.counter_a");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&obs::counter("test.counter_a"), &c);  // stable reference
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  auto& g = obs::gauge("test.gauge_a");
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(Metrics, HistogramObservesDistribution) {
  auto& h = obs::histogram("test.hist_a");
  h.reset();
  h.observe(3);
  h.observe(3);
  h.observe(7);
  const Histogram snap = h.snapshot();
  EXPECT_EQ(snap.total(), 3u);
  EXPECT_EQ(snap.count(3), 2u);
  EXPECT_EQ(snap.min_value(), 3);
  EXPECT_EQ(snap.max_value(), 7);
}

TEST(Metrics, SnapshotIsSortedAndTyped) {
  obs::counter("test.snap_counter").add(5);
  obs::gauge("test.snap_gauge").set(2.0);
  obs::histogram("test.snap_hist").observe(1);
  const auto samples = obs::metrics_snapshot();
  ASSERT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LE(samples[i - 1].name, samples[i].name);
  bool saw_counter = false;
  for (const auto& s : samples) {
    if (s.name == "test.snap_counter") {
      saw_counter = true;
      EXPECT_EQ(s.kind, obs::MetricKind::counter);
      EXPECT_GE(s.value, 5.0);
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(Metrics, LatencyHistogramBucketsCountAndExtrema) {
  auto& l = obs::latency_histogram("test.lat_a");
  l.reset();
  EXPECT_EQ(&obs::latency_histogram("test.lat_a"), &l);  // stable reference
  l.observe_us(1.0);
  l.observe_us(3.0);
  l.observe_us(100.0);
  l.observe_us(1000.0);
  l.observe_us(1e6);
  const obs::LatencySnapshot s = l.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum_us, 1.0 + 3.0 + 100.0 + 1000.0 + 1e6);
  EXPECT_DOUBLE_EQ(s.min_us, 1.0);
  EXPECT_DOUBLE_EQ(s.max_us, 1e6);
  // Power-of-two bucket bounds: 3 -> 4, 100 -> 128, 1000 -> 1024.
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[7], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_EQ(s.buckets[20], 1u);
  // Nearest-rank quantiles report the covering bucket's upper bound.
  EXPECT_DOUBLE_EQ(s.quantile_us(0.5), 128.0);
  EXPECT_DOUBLE_EQ(s.quantile_us(0.99), 1048576.0);
}

TEST(Metrics, LatencyHistogramResetAndEdgeCases) {
  auto& l = obs::latency_histogram("test.lat_b");
  l.reset();
  const obs::LatencySnapshot empty = l.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.min_us, 0.0);  // no sentinel leak when empty
  EXPECT_DOUBLE_EQ(empty.quantile_us(0.5), 0.0);
  l.observe_us(-5.0);  // clamped to zero, lands in the first bucket
  l.observe_seconds(1e-3);  // 1000 us
  obs::LatencySnapshot s = l.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_DOUBLE_EQ(s.min_us, 0.0);
  l.reset();
  EXPECT_EQ(l.snapshot().count, 0u);
  // Overflow magnitudes saturate into the last bucket.
  l.observe_us(1e30);
  s = l.snapshot();
  EXPECT_EQ(s.buckets[obs::kLatencyBuckets - 1], 1u);
  obs::reset_metrics();
  EXPECT_EQ(l.snapshot().count, 0u);  // registry reset covers latencies
}

TEST(Metrics, LatencyHistogramIsThreadSafe) {
  auto& l = obs::latency_histogram("test.lat_mt");
  l.reset();
  constexpr int kThreads = 4;
  constexpr int kEach = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i)
        l.observe_us(static_cast<double>(1 + (t * kEach + i) % 500));
    });
  for (auto& t : ts) t.join();
  const obs::LatencySnapshot s = l.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kEach));
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_DOUBLE_EQ(s.min_us, 1.0);
  EXPECT_DOUBLE_EQ(s.max_us, 500.0);
}

// ---- Prometheus text ------------------------------------------------------

TEST(PrometheusExport, FormatsCounterGaugeHistogram) {
  std::vector<obs::MetricSample> samples;
  samples.push_back({"kernel.bytes", obs::MetricKind::counter, 1024.0, {}, {}});
  samples.push_back({"pool.workers", obs::MetricKind::gauge, 7.0, {}, {}});
  Histogram h;
  h.add(2, 3);  // three observations of value 2
  samples.push_back({"row.len", obs::MetricKind::histogram, 3.0, h, {}});

  const std::string text = obs::prometheus_text(samples);
  EXPECT_NE(text.find("# TYPE spmvm_kernel_bytes counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvm_kernel_bytes 1024\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spmvm_pool_workers gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvm_pool_workers 7\n"), std::string::npos);
  EXPECT_NE(text.find("spmvm_row_len_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("spmvm_row_len_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("spmvm_row_len_min 2\n"), std::string::npos);
  EXPECT_NE(text.find("spmvm_row_len_max 2\n"), std::string::npos);
  // Every non-comment line is "name value".
  std::size_t at = 0;
  while (at < text.size()) {
    const std::size_t nl = text.find('\n', at);
    const std::string line = text.substr(at, nl - at);
    at = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("spmvm_", 0), 0u) << line;
  }
}

TEST(PrometheusExport, LabeledCountersUseLabelSyntax) {
  std::vector<obs::MetricSample> samples;
  samples.push_back(
      {"comm.bytes_sent{peer=0}", obs::MetricKind::counter, 128.0, {}, {}});
  samples.push_back(
      {"comm.bytes_sent{peer=1}", obs::MetricKind::counter, 256.0, {}, {}});
  samples.push_back(
      {"comm.bytes_recv{peer=0}", obs::MetricKind::counter, 64.0, {}, {}});

  const std::string text = obs::prometheus_text(samples);
  EXPECT_NE(text.find("spmvm_comm_bytes_sent{peer=\"0\"} 128\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spmvm_comm_bytes_sent{peer=\"1\"} 256\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvm_comm_bytes_recv{peer=\"0\"} 64\n"),
            std::string::npos);
  // One TYPE header per base name, not one per labeled sample.
  std::size_t type_headers = 0, at = 0;
  const std::string needle = "# TYPE spmvm_comm_bytes_sent counter\n";
  while ((at = text.find(needle, at)) != std::string::npos) {
    ++type_headers;
    at += needle.size();
  }
  EXPECT_EQ(type_headers, 1u);
}

TEST(PrometheusExport, LiveRegistrySnapshotSerializes) {
  obs::counter("test.prom_live").add(1);
  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("spmvm_test_prom_live"), std::string::npos);
}

TEST(PrometheusExport, HelpLinesPrecedeTypeWhenRegistered) {
  obs::set_metric_help("test.documented", "What it counts\nsecond line \\x");
  std::vector<obs::MetricSample> samples;
  samples.push_back({"test.documented", obs::MetricKind::counter, 1.0, {}, {}});
  samples.push_back({"test.undocumented", obs::MetricKind::counter, 2.0, {}, {}});

  const std::string text = obs::prometheus_text(samples);
  // HELP escaping: backslash and newline only (quotes stay literal).
  const std::size_t help = text.find(
      "# HELP spmvm_test_documented What it counts\\nsecond line \\\\x\n");
  const std::size_t type =
      text.find("# TYPE spmvm_test_documented counter\n");
  ASSERT_NE(help, std::string::npos) << text;
  ASSERT_NE(type, std::string::npos);
  EXPECT_LT(help, type);
  EXPECT_EQ(text.find("# HELP spmvm_test_undocumented"), std::string::npos);
}

TEST(PrometheusExport, HelpFallsBackToBaseNameForLabeledMetrics) {
  obs::set_metric_help("test.labeled_help", "per-peer traffic");
  std::vector<obs::MetricSample> samples;
  samples.push_back(
      {"test.labeled_help{peer=3}", obs::MetricKind::counter, 8.0, {}, {}});
  const std::string text = obs::prometheus_text(samples);
  EXPECT_NE(text.find("# HELP spmvm_test_labeled_help per-peer traffic\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusExport, HistogramsExposeExactQuantiles) {
  // 100 observations of 1..100: nearest-rank p50 = 50, p95 = 95, p99 = 99.
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.add(v);
  std::vector<obs::MetricSample> samples;
  samples.push_back({"test.quant", obs::MetricKind::histogram, 100.0, h, {}});

  const std::string text = obs::prometheus_text(samples);
  EXPECT_NE(text.find("spmvm_test_quant{quantile=\"0.5\"} 50\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spmvm_test_quant{quantile=\"0.95\"} 95\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvm_test_quant{quantile=\"0.99\"} 99\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvm_test_quant_count 100\n"), std::string::npos);
}

TEST(PrometheusExport, LatencyHistogramsExportAsSummaries) {
  auto& l = obs::latency_histogram("test.lat_prom");
  l.reset();
  for (int i = 0; i < 10; ++i) l.observe_us(100.0);  // bucket bound 128
  obs::MetricSample s;
  s.name = "test.lat_prom";
  s.kind = obs::MetricKind::latency;
  s.lat = l.snapshot();
  s.value = static_cast<double>(s.lat.count);
  const std::string text = obs::prometheus_text({s});
  EXPECT_NE(text.find("# TYPE spmvm_test_lat_prom summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spmvm_test_lat_prom{quantile=\"0.5\"} 128\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvm_test_lat_prom{quantile=\"0.99\"} 128\n"),
            std::string::npos);
  EXPECT_NE(text.find("spmvm_test_lat_prom_count 10\n"), std::string::npos);
  EXPECT_NE(text.find("spmvm_test_lat_prom_sum 1000\n"), std::string::npos);
  EXPECT_NE(text.find("spmvm_test_lat_prom_min 100\n"), std::string::npos);
  EXPECT_NE(text.find("spmvm_test_lat_prom_max 100\n"), std::string::npos);
  l.reset();
}

TEST(PrometheusExport, LabeledHistogramQuantilesMergeLabelSets) {
  Histogram h;
  h.add(4, 2);
  std::vector<obs::MetricSample> samples;
  samples.push_back(
      {"test.lq{format=pjds}", obs::MetricKind::histogram, 2.0, h, {}});
  const std::string text = obs::prometheus_text(samples);
  // The quantile label joins the existing set inside one brace pair.
  EXPECT_NE(
      text.find("spmvm_test_lq{format=\"pjds\",quantile=\"0.5\"} 4\n"),
      std::string::npos)
      << text;
}

TEST(PrometheusExport, LabelValuesAreEscaped) {
  std::vector<obs::MetricSample> samples;
  samples.push_back({"test.esc{path=a\\b\"c\nd}",
                     obs::MetricKind::counter, 1.0, {}, {}});
  const std::string text = obs::prometheus_text(samples);
  // Exposition format: backslash, quote and newline escaped in values.
  EXPECT_NE(text.find("spmvm_test_esc{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(Metrics, ResetAllClearsGaugesToo) {
  obs::counter("test.reset_all_counter").add(5);
  obs::gauge("test.reset_all_gauge").set(3.5);
  obs::histogram("test.reset_all_hist").observe(2);

  // reset_metrics keeps gauges (same-workload repetition semantics) ...
  obs::reset_metrics();
  EXPECT_EQ(obs::counter("test.reset_all_counter").value(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.reset_all_gauge").value(), 3.5);

  // ... reset_all() zeroes gauges as well (workload-switch semantics).
  obs::gauge("test.reset_all_gauge").set(3.5);
  obs::counter("test.reset_all_counter").add(7);
  obs::reset_all();
  EXPECT_EQ(obs::counter("test.reset_all_counter").value(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.reset_all_gauge").value(), 0.0);
  EXPECT_EQ(obs::histogram("test.reset_all_hist").snapshot().total(), 0u);
}

// ---- Chrome trace JSON ----------------------------------------------------

TEST(ChromeExport, EmitsWellFormedJsonWithThreadsAndArgs) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent e;
  e.name = "kernel/pjds";
  e.t0_ns = 1500;
  e.t1_ns = 4500;
  e.tid = 0;
  e.depth = 1;
  e.bytes = 3000;  // 3000 bytes / 3000 ns = 1 GB/s
  e.arg_name[0] = "alpha";
  e.arg_value[0] = 1.25;
  e.n_args = 1;
  events.push_back(e);
  const std::vector<obs::TraceThread> threads = {{0, "main \"thread\""}};

  const std::string json = obs::chrome_trace_json(events, threads);
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("main \\\"thread\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"name\":\"kernel/pjds\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":3000"), std::string::npos);
  EXPECT_NE(json.find("\"GB/s\":1"), std::string::npos);
  EXPECT_NE(json.find("\"alpha\":1.25"), std::string::npos);
}

TEST(ChromeExport, EmptyTraceIsValid) {
  const std::string json = obs::chrome_trace_json({}, {});
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

// ---- bench.json -----------------------------------------------------------

TEST(BenchJson, SummarizesSamplesAndSerializes) {
  const double samples[] = {3e-3, 1e-3, 2e-3};
  obs::BenchReport report;
  report.binary = "test_bench";
  report.metadata.emplace_back("threads", "4");
  report.entries.push_back(
      obs::summarize_samples("case/a", samples, {{"GB/s", 12.5}}));

  const auto& e = report.entries[0];
  EXPECT_EQ(e.repetitions, 3);
  EXPECT_DOUBLE_EQ(e.median_seconds, 2e-3);
  EXPECT_DOUBLE_EQ(e.min_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(e.max_seconds, 3e-3);
  EXPECT_GT(e.stddev_seconds, 0.0);

  const std::string json = report.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"binary\":\"test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":\"4\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"case/a\""), std::string::npos);
  EXPECT_NE(json.find("\"GB/s\":12.5"), std::string::npos);
}

// ---- end-to-end -----------------------------------------------------------

TEST(TraceIntegration, SolverAndDistRunExportAllLayers) {
  ScopedTracing on(true);

  // A threaded CG solve: spans from the solver loop, the spMVM kernel
  // and the thread pool all land in the trace.
  {
    const auto a = std::make_shared<const Csr<double>>(
        make_poisson2d<double>(48, 48));
    const auto op = solver::make_operator<double>(a, 4);
    std::vector<double> b(static_cast<std::size_t>(a->n_rows), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const auto r = solver::cg(op, std::span<const double>(b),
                              std::span<double>(x), 1e-8, 200);
    EXPECT_TRUE(r.converged);
  }

  // One distributed power iteration in task mode: comm-phase spans from
  // the persistent halo-exchange plan.
  {
    const auto a = make_poisson2d<double>(24, 24);
    const auto part = dist::partition_balanced_nnz(a, 2);
    msg::Runtime::run(2, [&](msg::Comm& comm) {
      obs::set_thread_name("rank " + std::to_string(comm.rank()));
      const auto d = dist::distribute(a, part, comm.rank());
      const index_t row0 = part.begin(comm.rank());
      std::vector<double> x0(
          static_cast<std::size_t>(part.end(comm.rank()) - row0), 1.0);
      dist::run_power_iterations(comm, d, std::span<const double>(x0), 2,
                                 dist::CommScheme::task_mode);
    });
  }

  const std::string json = obs::chrome_trace_json();
  EXPECT_TRUE(json_well_formed(json));
  for (const char* span_name :
       {"solver/cg", "solver/cg/iteration", "kernel/csr", "pool/part",
        "dist/plan_task", "comm/plan_gather", "comm/plan_waitall",
        "kernel/local"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(span_name) + "\""),
              std::string::npos)
        << "missing span: " << span_name;
  }
  // The solver iteration spans carry residuals.
  EXPECT_NE(json.find("\"residual\":"), std::string::npos);
  // Actor metadata from set_thread_name survives into the export.
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);

  // Always-on metrics observed the same run.
  EXPECT_GT(obs::counter("kernel.calls").value(), 0u);
  EXPECT_GT(obs::counter("kernel.bytes").value(), 0u);
  EXPECT_GT(obs::counter("solver.iterations").value(), 0u);
  EXPECT_GT(obs::counter("comm.halo_bytes").value(), 0u);
  EXPECT_GT(obs::counter("pool.tasks").value(), 0u);
}

}  // namespace
}  // namespace spmvm
