#include "msg/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace spmvm::msg {
namespace {

TEST(MsgRuntime, RanksSeeCorrectIdentity) {
  std::atomic<int> sum{0};
  Runtime::run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(MsgRuntime, SingleRankRuns) {
  bool ran = false;
  Runtime::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(MsgRuntime, PointToPointRoundTrip) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data = {1.5, 2.5, 3.5};
      comm.send_t<double>(1, 7, data);
      std::vector<double> back(3);
      comm.recv_t<double>(1, 8, back);
      EXPECT_EQ(back, (std::vector<double>{3.0, 5.0, 7.0}));
    } else {
      std::vector<double> buf(3);
      comm.recv_t<double>(0, 7, buf);
      for (auto& v : buf) v *= 2.0;
      comm.send_t<double>(0, 8, buf);
    }
  });
}

TEST(MsgRuntime, TagMatchingIsSelective) {
  // Messages with different tags do not satisfy a pending receive even
  // when they arrive first.
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 111, b = 222;
      comm.send_t<int>(1, /*tag=*/2, std::span<const int>(&a, 1));
      comm.send_t<int>(1, /*tag=*/1, std::span<const int>(&b, 1));
    } else {
      int first = 0, second = 0;
      comm.recv_t<int>(0, 1, std::span<int>(&first, 1));
      comm.recv_t<int>(0, 2, std::span<int>(&second, 1));
      EXPECT_EQ(first, 222);
      EXPECT_EQ(second, 111);
    }
  });
}

TEST(MsgRuntime, NonblockingOverlap) {
  Runtime::run(3, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    const double mine = comm.rank() * 10.0;
    double got = -1.0;
    std::vector<Request> reqs;
    reqs.push_back(comm.irecv_t<double>(prev, 0, std::span<double>(&got, 1)));
    reqs.push_back(
        comm.isend_t<double>(next, 0, std::span<const double>(&mine, 1)));
    comm.waitall(reqs);
    EXPECT_DOUBLE_EQ(got, prev * 10.0);
  });
}

TEST(MsgRuntime, MessageOrderPreservedPerPeerAndTag) {
  Runtime::run(2, [](Comm& comm) {
    constexpr int kCount = 64;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i)
        comm.send_t<int>(1, 5, std::span<const int>(&i, 1));
    } else {
      for (int i = 0; i < kCount; ++i) {
        int v = -1;
        comm.recv_t<int>(0, 5, std::span<int>(&v, 1));
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(MsgRuntime, BarrierSynchronizes) {
  std::atomic<int> phase_one{0};
  std::vector<int> seen(8, -1);
  Runtime::run(8, [&](Comm& comm) {
    ++phase_one;
    comm.barrier();
    // After the barrier every rank must observe all 8 increments.
    seen[static_cast<std::size_t>(comm.rank())] = phase_one.load();
  });
  for (int v : seen) EXPECT_EQ(v, 8);
}

TEST(MsgRuntime, BarrierReusable) {
  Runtime::run(4, [](Comm& comm) {
    for (int round = 0; round < 25; ++round) comm.barrier();
  });
}

TEST(MsgRuntime, AllreduceSum) {
  Runtime::run(5, [](Comm& comm) {
    const double total = comm.allreduce_sum(comm.rank() + 1.0);
    EXPECT_DOUBLE_EQ(total, 15.0);
  });
}

TEST(MsgRuntime, Allgather) {
  Runtime::run(4, [](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 2.0);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r)
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 2.0);
  });
}

TEST(MsgRuntime, AlltoallPersonalized) {
  Runtime::run(3, [](Comm& comm) {
    // Rank r sends the vector {r, d} to destination d.
    std::vector<std::vector<int>> send(3);
    for (int d = 0; d < 3; ++d) send[static_cast<std::size_t>(d)] = {comm.rank(), d};
    const auto got = comm.alltoall_t<int>(send);
    ASSERT_EQ(got.size(), 3u);
    for (int s = 0; s < 3; ++s)
      EXPECT_EQ(got[static_cast<std::size_t>(s)],
                (std::vector<int>{s, comm.rank()}));
  });
}

TEST(MsgRuntime, AlltoallEmptyBuffers) {
  Runtime::run(3, [](Comm& comm) {
    std::vector<std::vector<int>> send(3);  // all empty
    const auto got = comm.alltoall_t<int>(send);
    for (const auto& v : got) EXPECT_TRUE(v.empty());
  });
}

TEST(MsgRuntime, RankExceptionPropagates) {
  EXPECT_THROW(
      Runtime::run(3,
                   [](Comm& comm) {
                     comm.barrier();  // everyone reaches the barrier
                     if (comm.rank() == 1)
                       throw Error("boom");
                     // Other ranks block; the abort must wake them.
                     double x = 0;
                     comm.recv_t<double>(1, 9, std::span<double>(&x, 1));
                   }),
      Error);
}

TEST(MsgRuntime, SizeMismatchIsAnError) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                const std::vector<int> v = {1, 2, 3};
                                comm.send_t<int>(1, 0, v);
                              } else {
                                std::vector<int> buf(2);  // wrong size
                                comm.recv_t<int>(0, 0, buf);
                              }
                            }),
               Error);
}

TEST(MsgRuntime, RejectsBadRankArguments) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), Error);
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              const int x = 1;
                              comm.send_t<int>(5, 0,
                                               std::span<const int>(&x, 1));
                            }),
               Error);
}

TEST(MsgRuntime, IrecvRejectsSelfAndOutOfRangeSource) {
  // A receive from self or from a nonexistent rank could never be
  // satisfied; it must fail up front instead of hanging.
  for (const int bad_source : {-1, 2, 5}) {
    EXPECT_THROW(Runtime::run(2,
                              [&](Comm& comm) {
                                int v = 0;
                                comm.irecv_t<int>(bad_source, 0,
                                                  std::span<int>(&v, 1));
                              }),
                 Error)
        << "source " << bad_source;
  }
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              int v = 0;
                              comm.irecv_t<int>(comm.rank(), 0,
                                                std::span<int>(&v, 1));
                            }),
               Error);
}

TEST(MsgRuntime, PersistentRequestsRoundTripRepeatedly) {
  Runtime::run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<int> out(4), in(4);
    Request send = comm.send_init_t<int>(peer, 9, std::span<const int>(out));
    Request recv = comm.recv_init_t<int>(peer, 9, std::span<int>(in));
    for (int it = 0; it < 20; ++it) {
      for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] =
          comm.rank() * 1000 + it * 10 + i;
      comm.start(recv);
      comm.barrier();  // both receives posted before either send starts
      comm.start(send);
      comm.wait(send);
      comm.wait(recv);
      for (int i = 0; i < 4; ++i)
        EXPECT_EQ(in[static_cast<std::size_t>(i)], peer * 1000 + it * 10 + i)
            << "iteration " << it;
      comm.barrier();
    }
  });
}

TEST(MsgRuntime, PostedReceiveTakesRendezvousPath) {
  std::uint64_t hits_delta = 0, eager_delta = 0;
  Runtime::run(2, [&](Comm& comm) {
    double v = 0.0;
    Request recv;
    if (comm.rank() == 1)
      recv = comm.irecv_t<double>(0, 3, std::span<double>(&v, 1));
    comm.barrier();
    std::uint64_t hits0 = 0, eager0 = 0;
    if (comm.rank() == 0) {
      hits0 = obs::counter("comm.rendezvous_hits").value();
      eager0 = obs::counter("comm.eager_fallbacks").value();
      const double x = 42.0;
      comm.send_t<double>(1, 3, std::span<const double>(&x, 1));
      hits_delta = obs::counter("comm.rendezvous_hits").value() - hits0;
      eager_delta = obs::counter("comm.eager_fallbacks").value() - eager0;
    }
    if (comm.rank() == 1) {
      comm.wait(recv);
      EXPECT_EQ(v, 42.0);
    }
  });
  EXPECT_EQ(hits_delta, 1u);
  EXPECT_EQ(eager_delta, 0u);
}

TEST(MsgRuntime, CancelRemovesPostedPersistentReceive) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double v = 0.0;
      Request recv = comm.recv_init_t<double>(1, 4, std::span<double>(&v, 1));
      comm.start(recv);
      comm.cancel(recv);
      comm.barrier();
      comm.barrier();  // peer has sent by now
      // The send must have taken the eager path, not scribbled into the
      // canceled buffer.
      EXPECT_EQ(v, 0.0);
    } else {
      comm.barrier();
      const double x = 7.0;
      comm.send_t<double>(0, 4, std::span<const double>(&x, 1));
      comm.barrier();
    }
  });
}

}  // namespace
}  // namespace spmvm::msg
