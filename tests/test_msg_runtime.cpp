#include "msg/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace spmvm::msg {
namespace {

TEST(MsgRuntime, RanksSeeCorrectIdentity) {
  std::atomic<int> sum{0};
  Runtime::run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    sum += comm.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(MsgRuntime, SingleRankRuns) {
  bool ran = false;
  Runtime::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(MsgRuntime, PointToPointRoundTrip) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data = {1.5, 2.5, 3.5};
      comm.send_t<double>(1, 7, data);
      std::vector<double> back(3);
      comm.recv_t<double>(1, 8, back);
      EXPECT_EQ(back, (std::vector<double>{3.0, 5.0, 7.0}));
    } else {
      std::vector<double> buf(3);
      comm.recv_t<double>(0, 7, buf);
      for (auto& v : buf) v *= 2.0;
      comm.send_t<double>(0, 8, buf);
    }
  });
}

TEST(MsgRuntime, TagMatchingIsSelective) {
  // Messages with different tags do not satisfy a pending receive even
  // when they arrive first.
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 111, b = 222;
      comm.send_t<int>(1, /*tag=*/2, std::span<const int>(&a, 1));
      comm.send_t<int>(1, /*tag=*/1, std::span<const int>(&b, 1));
    } else {
      int first = 0, second = 0;
      comm.recv_t<int>(0, 1, std::span<int>(&first, 1));
      comm.recv_t<int>(0, 2, std::span<int>(&second, 1));
      EXPECT_EQ(first, 222);
      EXPECT_EQ(second, 111);
    }
  });
}

TEST(MsgRuntime, NonblockingOverlap) {
  Runtime::run(3, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    const double mine = comm.rank() * 10.0;
    double got = -1.0;
    std::vector<Request> reqs;
    reqs.push_back(comm.irecv_t<double>(prev, 0, std::span<double>(&got, 1)));
    reqs.push_back(
        comm.isend_t<double>(next, 0, std::span<const double>(&mine, 1)));
    comm.waitall(reqs);
    EXPECT_DOUBLE_EQ(got, prev * 10.0);
  });
}

TEST(MsgRuntime, MessageOrderPreservedPerPeerAndTag) {
  Runtime::run(2, [](Comm& comm) {
    constexpr int kCount = 64;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i)
        comm.send_t<int>(1, 5, std::span<const int>(&i, 1));
    } else {
      for (int i = 0; i < kCount; ++i) {
        int v = -1;
        comm.recv_t<int>(0, 5, std::span<int>(&v, 1));
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(MsgRuntime, BarrierSynchronizes) {
  std::atomic<int> phase_one{0};
  std::vector<int> seen(8, -1);
  Runtime::run(8, [&](Comm& comm) {
    ++phase_one;
    comm.barrier();
    // After the barrier every rank must observe all 8 increments.
    seen[static_cast<std::size_t>(comm.rank())] = phase_one.load();
  });
  for (int v : seen) EXPECT_EQ(v, 8);
}

TEST(MsgRuntime, BarrierReusable) {
  Runtime::run(4, [](Comm& comm) {
    for (int round = 0; round < 25; ++round) comm.barrier();
  });
}

TEST(MsgRuntime, AllreduceSum) {
  Runtime::run(5, [](Comm& comm) {
    const double total = comm.allreduce_sum(comm.rank() + 1.0);
    EXPECT_DOUBLE_EQ(total, 15.0);
  });
}

TEST(MsgRuntime, Allgather) {
  Runtime::run(4, [](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 2.0);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r)
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 2.0);
  });
}

TEST(MsgRuntime, AlltoallPersonalized) {
  Runtime::run(3, [](Comm& comm) {
    // Rank r sends the vector {r, d} to destination d.
    std::vector<std::vector<int>> send(3);
    for (int d = 0; d < 3; ++d) send[static_cast<std::size_t>(d)] = {comm.rank(), d};
    const auto got = comm.alltoall_t<int>(send);
    ASSERT_EQ(got.size(), 3u);
    for (int s = 0; s < 3; ++s)
      EXPECT_EQ(got[static_cast<std::size_t>(s)],
                (std::vector<int>{s, comm.rank()}));
  });
}

TEST(MsgRuntime, AlltoallEmptyBuffers) {
  Runtime::run(3, [](Comm& comm) {
    std::vector<std::vector<int>> send(3);  // all empty
    const auto got = comm.alltoall_t<int>(send);
    for (const auto& v : got) EXPECT_TRUE(v.empty());
  });
}

TEST(MsgRuntime, RankExceptionPropagates) {
  EXPECT_THROW(
      Runtime::run(3,
                   [](Comm& comm) {
                     comm.barrier();  // everyone reaches the barrier
                     if (comm.rank() == 1)
                       throw Error("boom");
                     // Other ranks block; the abort must wake them.
                     double x = 0;
                     comm.recv_t<double>(1, 9, std::span<double>(&x, 1));
                   }),
      Error);
}

TEST(MsgRuntime, SizeMismatchIsAnError) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                const std::vector<int> v = {1, 2, 3};
                                comm.send_t<int>(1, 0, v);
                              } else {
                                std::vector<int> buf(2);  // wrong size
                                comm.recv_t<int>(0, 0, buf);
                              }
                            }),
               Error);
}

TEST(MsgRuntime, RejectsBadRankArguments) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), Error);
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              const int x = 1;
                              comm.send_t<int>(5, 0,
                                               std::span<const int>(&x, 1));
                            }),
               Error);
}

}  // namespace
}  // namespace spmvm::msg
