// Stress and failure-injection tests for the message runtime: random
// communication storms, interleaved collectives, and repeated runs that
// would expose races, lost messages or deadlocks.
#include <gtest/gtest.h>

#include <vector>

#include "msg/runtime.hpp"
#include "util/rng.hpp"

namespace spmvm::msg {
namespace {

TEST(MsgStress, RandomPairwiseStorm) {
  // Every rank sends a deterministic pseudo-random number of messages to
  // every other rank; receivers know the counts (same seeds) and check
  // content and order.
  constexpr int kRanks = 6;
  Runtime::run(kRanks, [](Comm& comm) {
    auto count_of = [](int from, int to) {
      Rng rng(1000 + 17ull * from + to);
      return 1 + static_cast<int>(rng.next_below(8));
    };
    // Post all sends.
    for (int to = 0; to < kRanks; ++to) {
      if (to == comm.rank()) continue;
      const int n = count_of(comm.rank(), to);
      for (int m = 0; m < n; ++m) {
        const int payload = comm.rank() * 1000 + m;
        comm.send_t<int>(to, 7, std::span<const int>(&payload, 1));
      }
    }
    // Drain all receives (order per sender must be preserved).
    for (int from = 0; from < kRanks; ++from) {
      if (from == comm.rank()) continue;
      const int n = count_of(from, comm.rank());
      for (int m = 0; m < n; ++m) {
        int got = -1;
        comm.recv_t<int>(from, 7, std::span<int>(&got, 1));
        EXPECT_EQ(got, from * 1000 + m);
      }
    }
  });
}

TEST(MsgStress, CollectivesInterleavedWithP2p) {
  constexpr int kRanks = 4;
  Runtime::run(kRanks, [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      const double mine = comm.rank() + round * 10.0;
      double got = 0.0;
      auto rr = comm.irecv_t<double>(prev, round, std::span<double>(&got, 1));
      comm.isend_t<double>(next, round, std::span<const double>(&mine, 1));
      const double sum = comm.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(sum, kRanks);
      comm.wait(rr);
      EXPECT_DOUBLE_EQ(got, prev + round * 10.0);
      comm.barrier();
    }
  });
}

TEST(MsgStress, LargePayloads) {
  Runtime::run(2, [](Comm& comm) {
    constexpr std::size_t kWords = 1 << 18;  // 2 MiB of doubles
    if (comm.rank() == 0) {
      std::vector<double> big(kWords);
      for (std::size_t i = 0; i < kWords; ++i)
        big[i] = static_cast<double>(i);
      comm.send_t<double>(1, 0, big);
    } else {
      std::vector<double> buf(kWords);
      comm.recv_t<double>(0, 0, buf);
      EXPECT_DOUBLE_EQ(buf.front(), 0.0);
      EXPECT_DOUBLE_EQ(buf.back(), static_cast<double>(kWords - 1));
    }
  });
}

TEST(MsgStress, ManySmallAlltoalls) {
  Runtime::run(5, [](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      std::vector<std::vector<int>> send(5);
      for (int d = 0; d < 5; ++d)
        send[static_cast<std::size_t>(d)] = {comm.rank(), d, round};
      const auto got = comm.alltoall_t<int>(send);
      for (int s = 0; s < 5; ++s)
        EXPECT_EQ(got[static_cast<std::size_t>(s)],
                  (std::vector<int>{s, comm.rank(), round}));
    }
  });
}

TEST(MsgStress, RepeatedRuntimesAreIndependent) {
  // State must not leak between Runtime::run invocations.
  for (int round = 0; round < 25; ++round) {
    Runtime::run(3, [round](Comm& comm) {
      const double total = comm.allreduce_sum(round + comm.rank());
      EXPECT_DOUBLE_EQ(total, 3.0 * round + 3.0);
    });
  }
}

TEST(MsgStress, AbortDuringStormUnblocksEveryone) {
  // One rank dies mid-storm; all blocked peers must unwind with errors
  // instead of deadlocking.
  EXPECT_THROW(
      Runtime::run(4,
                   [](Comm& comm) {
                     comm.barrier();
                     if (comm.rank() == 2) throw Error("injected failure");
                     for (int m = 0; m < 100; ++m) {
                       double x = 0;
                       comm.recv_t<double>(2, m, std::span<double>(&x, 1));
                     }
                   }),
      Error);
}

}  // namespace
}  // namespace spmvm::msg
