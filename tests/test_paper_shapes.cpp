// End-to-end shape tests: the headline claims of the paper, asserted
// through the full pipeline (generator -> format -> simulator) at small
// scale. These are the same checks EXPERIMENTS.md documents, kept green
// by CI.
#include <gtest/gtest.h>

#include "sparse/footprint.hpp"
#include "gpusim/cpu_node.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "gpusim/pcie.hpp"
#include "matgen/suite.hpp"

namespace spmvm {
namespace {

using gpusim::DeviceSpec;
using gpusim::FormatKind;
using gpusim::SimOptions;

double reduction(const Csr<double>& a) {
  return data_reduction_percent(Pjds<double>::from_csr(a),
                                Ellpack<double>::from_csr(a, 32));
}

/// Simulated GF/s with the L2 scaled like the matrix (see DESIGN.md).
double gfs(const Csr<double>& a, double scale, FormatKind kind, bool ecc) {
  DeviceSpec dev = DeviceSpec::tesla_c2070();
  dev.l2_bytes =
      static_cast<std::size_t>(static_cast<double>(dev.l2_bytes) / scale);
  SimOptions opt;
  opt.ecc = ecc;
  return gpusim::simulate_format(dev, a, kind, opt).gflops;
}

TEST(PaperShapes, TableOneReductionOrdering) {
  // sAMG > DLR2 > HMEp > DLR1, each within a band of the paper's value.
  const double dlr1 = reduction(make_named("DLR1", 32).matrix);
  const double dlr2 = reduction(make_named("DLR2", 64).matrix);
  const double hmep = reduction(make_named("HMEp", 128).matrix);
  const double samg = reduction(make_named("sAMG", 128).matrix);
  EXPECT_GT(samg, dlr2);
  EXPECT_GT(dlr2, hmep);
  EXPECT_GT(hmep, dlr1);
  EXPECT_NEAR(dlr1, 17.5, 7.0);
  EXPECT_NEAR(dlr2, 48.0, 10.0);
  EXPECT_NEAR(hmep, 36.0, 8.0);
  EXPECT_NEAR(samg, 68.4, 10.0);
}

TEST(PaperShapes, PjdsWinsSinglePrecisionOnDlr1) {
  // Table I: SP ECC=0, DLR1: 22.1 -> 27.6 (+25 %). Require a clear win.
  const auto m = make_named("DLR1", 32);
  Csr<float> af;
  af.n_rows = m.matrix.n_rows;
  af.n_cols = m.matrix.n_cols;
  af.row_ptr = m.matrix.row_ptr;
  af.col_idx = m.matrix.col_idx;
  af.val.assign(m.matrix.val.begin(), m.matrix.val.end());
  const auto dev = DeviceSpec::tesla_c2070();
  const double er =
      gpusim::simulate_format(dev, af, FormatKind::ellpack_r, {false}).gflops;
  const double pj =
      gpusim::simulate_format(dev, af, FormatKind::pjds, {false}).gflops;
  EXPECT_GT(pj, 1.05 * er);
}

TEST(PaperShapes, PjdsNearParityDoublePrecisionOnDlr1) {
  // Table I: DP ECC=1, DLR1: 12.9 vs 12.9 — within a few percent.
  const auto a = make_named("DLR1", 32).matrix;
  const double er = gfs(a, 32, FormatKind::ellpack_r, true);
  const double pj = gfs(a, 32, FormatKind::pjds, true);
  EXPECT_NEAR(pj / er, 1.0, 0.12);
}

TEST(PaperShapes, EccCostBoundedByBandwidthRatio) {
  const auto a = make_named("DLR2", 128).matrix;
  const double off = gfs(a, 128, FormatKind::ellpack_r, false);
  const double on = gfs(a, 128, FormatKind::ellpack_r, true);
  EXPECT_GT(off, on);
  EXPECT_LE(off / on, 120.0 / 91.0 + 0.02);
}

TEST(PaperShapes, WestmereRowInPaperBand) {
  // Table I last row: 3.9 .. 5.8 GF/s; allow a generous band.
  const auto cpu = gpusim::CpuNodeSpec::westmere_ep();
  for (const char* name : {"DLR1", "sAMG"}) {
    const auto r = gpusim::simulate_csr(cpu, make_named(name, 64).matrix);
    EXPECT_GT(r.gflops, 2.5) << name;
    EXPECT_LT(r.gflops, 9.0) << name;
  }
}

TEST(PaperShapes, PjdsOverheadVsMinimumIsTiny) {
  // Paper: < 0.01 % overhead vs storing only non-zeros at br = 32 for the
  // test matrices; require well under 1 % for the stand-ins.
  for (const char* name : {"DLR1", "DLR2", "HMEp", "sAMG"}) {
    const auto a = make_named(name, 128).matrix;
    const auto p = Pjds<double>::from_csr(a);
    EXPECT_LT(footprint(p).overhead_vs_minimum(), 0.01) << name;
  }
}

TEST(PaperShapes, Dlr2FullScaleCapacityClaim) {
  // Extrapolated full-scale DP footprints: ELLPACK(-R) > 3 GB > pJDS.
  const double scale = 64;
  const auto a = make_named("DLR2", scale).matrix;
  const double gb_er =
      static_cast<double>(gpusim::device_bytes(a, FormatKind::ellpack_r)) *
      scale / 1e9;
  const double gb_pjds =
      static_cast<double>(gpusim::device_bytes(a, FormatKind::pjds)) * scale /
      1e9;
  EXPECT_GT(gb_er, 3.0);
  EXPECT_LT(gb_pjds, 3.0);
}

}  // namespace
}  // namespace spmvm
