#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace spmvm {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<int> hits(1000, 0);
    parallel_for(hits.size(), threads, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i]++;
    });
    for (int h : hits) EXPECT_EQ(h, 1) << "threads=" << threads;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  parallel_for(3, 16, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelFor, SameResultSerialAndParallel) {
  std::vector<double> data(10000);
  std::iota(data.begin(), data.end(), 0.0);
  auto run = [&](int threads) {
    std::vector<double> out(data.size());
    parallel_for(data.size(), threads, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[i] = data[i] * 2.0 + 1.0;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1); }

}  // namespace
}  // namespace spmvm
