#include "dist/partition.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm::dist {
namespace {

TEST(PartitionUniform, EvenSplit) {
  const auto p = partition_uniform(100, 4);
  EXPECT_EQ(p.n_parts(), 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.count(r), 25);
}

TEST(PartitionUniform, RemainderSpreadOverFirstRanks) {
  const auto p = partition_uniform(10, 3);
  EXPECT_EQ(p.count(0), 4);
  EXPECT_EQ(p.count(1), 3);
  EXPECT_EQ(p.count(2), 3);
  EXPECT_EQ(p.n_rows(), 10);
}

TEST(PartitionUniform, MorePartsThanRows) {
  const auto p = partition_uniform(2, 4);
  EXPECT_EQ(p.count(0) + p.count(1) + p.count(2) + p.count(3), 2);
}

TEST(PartitionUniform, OwnerLookup) {
  const auto p = partition_uniform(100, 4);
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(24), 0);
  EXPECT_EQ(p.owner(25), 1);
  EXPECT_EQ(p.owner(99), 3);
  EXPECT_THROW(p.owner(100), Error);
  EXPECT_THROW(p.owner(-1), Error);
}

TEST(PartitionBalanced, EqualizesNnz) {
  // Very skewed matrix: first rows dense, rest sparse.
  Coo<double> coo(100, 100);
  for (index_t i = 0; i < 10; ++i)
    for (index_t j = 0; j < 50; ++j) coo.add(i, j, 1.0);
  for (index_t i = 10; i < 100; ++i) coo.add(i, i, 1.0);
  const auto a = Csr<double>::from_coo(std::move(coo));
  const auto p = partition_balanced_nnz(a, 2);
  // Half the nnz (295) per part: the dense head must not all land with
  // half the rows.
  const auto nnz_of = [&](int r) {
    offset_t n = 0;
    for (index_t i = p.begin(r); i < p.end(r); ++i) n += a.row_len(i);
    return n;
  };
  EXPECT_LT(p.count(0), 20);
  EXPECT_NEAR(static_cast<double>(nnz_of(0)),
              static_cast<double>(nnz_of(1)), 60.0);
}

TEST(PartitionBalanced, EveryRankGetsRowsWhenPossible) {
  const auto a = testing::random_csr<double>(64, 64, 1, 4, 3);
  const auto p = partition_balanced_nnz(a, 8);
  for (int r = 0; r < 8; ++r) EXPECT_GE(p.count(r), 1);
  EXPECT_EQ(p.n_rows(), 64);
}

TEST(Partition, RejectsBadOffsets) {
  EXPECT_THROW(RowPartition({1, 5}), Error);     // must start at 0
  EXPECT_THROW(RowPartition({0, 5, 3}), Error);  // decreasing
  EXPECT_THROW(RowPartition({0}), Error);        // no parts
  EXPECT_THROW(partition_uniform(10, 0), Error);
}

}  // namespace
}  // namespace spmvm::dist
