#include "solver/pcg.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::solver {
namespace {

using spmvm::testing::random_vector;

TEST(ExtractDiagonal, ReadsDiagonalEntries) {
  Coo<double> coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 2, 5.0);  // off-diagonal only in row 1
  coo.add(2, 2, -3.0);
  const auto d =
      extract_diagonal(Csr<double>::from_coo(std::move(coo)));
  EXPECT_EQ(d, (std::vector<double>{2.0, 0.0, -3.0}));
}

TEST(ExtractDiagonal, RejectsNonSquare) {
  const auto a = spmvm::testing::random_csr<double>(3, 4, 1, 2, 1);
  EXPECT_THROW(extract_diagonal(a), Error);
}

TEST(PcgJacobi, SolvesPoisson) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(18, 18));
  const auto op = make_operator<double>(a);
  const auto diag = extract_diagonal(*a);
  const auto b = random_vector<double>(a->n_rows, 2);
  std::vector<double> x(b.size(), 0.0);
  const auto r = pcg_jacobi(op, std::span<const double>(diag),
                            std::span<const double>(b), std::span<double>(x),
                            1e-11, 2000);
  EXPECT_TRUE(r.converged);
  std::vector<double> ax(b.size());
  op.apply(std::span<const double>(x), std::span<double>(ax));
  spmvm::testing::expect_vectors_near<double>(b, ax, 1e-7);
}

TEST(PcgJacobi, FewerIterationsOnBadlyScaledSystem) {
  // Rescale a Poisson system row/column-wise: plain CG suffers, Jacobi
  // preconditioning restores the iteration count.
  const auto base = make_poisson2d<double>(16, 16);
  Coo<double> coo(base.n_rows, base.n_cols);
  auto scale_of = [](index_t i) {
    return 1.0 + 99.0 * (static_cast<double>(i % 7) / 6.0);
  };
  for (index_t i = 0; i < base.n_rows; ++i)
    for (offset_t k = base.row_ptr[static_cast<std::size_t>(i)];
         k < base.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = base.col_idx[static_cast<std::size_t>(k)];
      coo.add(i, c,
              base.val[static_cast<std::size_t>(k)] * scale_of(i) *
                  scale_of(c));
    }
  const auto a = std::make_shared<const Csr<double>>(
      Csr<double>::from_coo(std::move(coo)));
  const auto op = make_operator<double>(a);
  const auto diag = extract_diagonal(*a);
  const auto b = random_vector<double>(a->n_rows, 3);

  std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto plain = cg(op, std::span<const double>(b),
                        std::span<double>(x1), 1e-10, 5000);
  const auto pre = pcg_jacobi(op, std::span<const double>(diag),
                              std::span<const double>(b),
                              std::span<double>(x2), 1e-10, 5000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  spmvm::testing::expect_vectors_near<double>(x1, x2, 1e-5);
}

TEST(PcgJacobi, IdentityPreconditionerMatchesCg) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(10, 10));
  const auto op = make_operator<double>(a);
  const std::vector<double> ones(100, 1.0);
  const auto b = random_vector<double>(100, 4);
  std::vector<double> x1(100, 0.0), x2(100, 0.0);
  const auto r1 = cg(op, std::span<const double>(b), std::span<double>(x1),
                     1e-11, 1000);
  const auto r2 = pcg_jacobi(op, std::span<const double>(ones),
                             std::span<const double>(b),
                             std::span<double>(x2), 1e-11, 1000);
  EXPECT_EQ(r1.iterations, r2.iterations);
  spmvm::testing::expect_vectors_near<double>(x1, x2, 1e-10);
}

TEST(PcgJacobi, RejectsZeroDiagonal) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(4, 4));
  const auto op = make_operator<double>(a);
  std::vector<double> diag(16, 1.0);
  diag[7] = 0.0;
  std::vector<double> b(16, 1.0), x(16, 0.0);
  EXPECT_THROW(pcg_jacobi(op, std::span<const double>(diag),
                          std::span<const double>(b), std::span<double>(x)),
               Error);
}

}  // namespace
}  // namespace spmvm::solver
