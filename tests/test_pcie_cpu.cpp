#include <gtest/gtest.h>

#include "gpusim/cpu_node.hpp"
#include "gpusim/gpu_spmv.hpp"
#include "gpusim/pcie.hpp"
#include "matgen/generators.hpp"
#include "test_helpers.hpp"

namespace spmvm::gpusim {
namespace {

const DeviceSpec kFermi = DeviceSpec::tesla_c2070();

TEST(Pcie, LatencyPlusBandwidth) {
  DeviceSpec d = kFermi;
  d.pcie_gbs = 5.0;
  d.pcie_latency_s = 1e-5;
  EXPECT_DOUBLE_EQ(pcie_seconds(d, 0), 0.0);
  EXPECT_DOUBLE_EQ(pcie_seconds(d, 5'000'000), 1e-5 + 1e-3);
}

TEST(Pcie, TransfersScaleWithVectorSizeNotNnz) {
  const auto sparse7 = make_random_uniform<double>(20000, 7, 1);
  const auto dense100 = make_random_uniform<double>(20000, 100, 2);
  const auto k7 = simulate_format(kFermi, sparse7, FormatKind::ellpack_r);
  const auto k100 = simulate_format(kFermi, dense100, FormatKind::ellpack_r);
  const auto t7 = with_pcie_transfers(kFermi, k7, 20000, 20000, 8);
  const auto t100 = with_pcie_transfers(kFermi, k100, 20000, 20000, 8);
  EXPECT_NEAR(t7.pcie_seconds, t100.pcie_seconds, 1e-12);
  // Low N_nzr: transfers dominate; high N_nzr: kernel dominates (Eq. 3/4).
  EXPECT_GT(t7.pcie_seconds, t7.kernel_seconds);
  EXPECT_LT(t100.pcie_seconds, t100.kernel_seconds);
}

TEST(Pcie, PenaltyShrinksWithNnzr) {
  double prev_ratio = 1e9;
  for (index_t nnzr : {5, 20, 80}) {
    const auto a = make_random_uniform<double>(30000, nnzr, 3);
    const auto k = simulate_format(kFermi, a, FormatKind::ellpack_r);
    const auto t = with_pcie_transfers(kFermi, k, a.n_rows, a.n_cols, 8);
    const double ratio = t.gflops_kernel / t.gflops_total;
    EXPECT_LT(ratio, prev_ratio) << "nnzr=" << nnzr;
    prev_ratio = ratio;
  }
}

TEST(CpuNode, WestmereCrsInPaperBallpark) {
  // Table I last row: 3.9-5.8 GF/s for the four matrices (DP CRS).
  const auto node = CpuNodeSpec::westmere_ep();
  GenConfig cfg;
  cfg.scale = 64;
  const auto dlr1 = simulate_csr(node, make_dlr1<double>(cfg));
  EXPECT_GT(dlr1.gflops, 3.0);
  EXPECT_LT(dlr1.gflops, 8.0);
}

TEST(CpuNode, AlphaMeasuredNotAssumed) {
  const auto node = CpuNodeSpec::westmere_ep();
  const auto banded = simulate_csr(node, make_banded<double>(20000, 4));
  const auto random = simulate_csr(
      node, make_random_uniform<double>(2000000, 8, 4));
  EXPECT_LT(banded.alpha, 0.5);
  EXPECT_GT(random.alpha, banded.alpha);
  EXPECT_GT(banded.gflops, random.gflops);
}

TEST(CpuNode, EmptyMatrixIsZero) {
  Coo<double> coo(0, 0);
  const auto r = simulate_csr(CpuNodeSpec::westmere_ep(),
                              Csr<double>::from_coo(std::move(coo)));
  EXPECT_DOUBLE_EQ(r.gflops, 0.0);
}

TEST(GpuVsCpu, HighNnzrFavorsGpuLowNnzrDoesNot) {
  // Sec. III: HMEp/sAMG (N_nzr ~ 15/7) fall below a CPU node once PCIe
  // is included; DLR-class matrices (N_nzr > 100) keep a clear margin.
  const auto node = CpuNodeSpec::westmere_ep();
  GenConfig cfg;
  cfg.scale = 64;

  const auto samg = make_samg<double>(cfg);
  const auto k_samg = simulate_format(kFermi, samg, FormatKind::ellpack_r);
  const auto t_samg = with_pcie_transfers(kFermi, k_samg, samg.n_rows,
                                          samg.n_cols, 8);
  const auto c_samg = simulate_csr(node, samg);
  EXPECT_LT(t_samg.gflops_total, 1.5 * c_samg.gflops);

  GenConfig cfg_dlr;
  cfg_dlr.scale = 8;
  const auto dlr1 = make_dlr1<double>(cfg_dlr);
  const auto k_dlr = simulate_format(kFermi, dlr1, FormatKind::ellpack_r);
  const auto t_dlr = with_pcie_transfers(kFermi, k_dlr, dlr1.n_rows,
                                         dlr1.n_cols, 8);
  const auto c_dlr = simulate_csr(node, dlr1);
  EXPECT_GT(t_dlr.gflops_total, 1.2 * c_dlr.gflops);
}

}  // namespace
}  // namespace spmvm::gpusim
