#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "perfmodel/balance.hpp"
#include "perfmodel/model_eval.hpp"
#include "perfmodel/pcie_impact.hpp"
#include "util/error.hpp"

namespace spmvm::perfmodel {
namespace {

TEST(Balance, PaperDpFormula) {
  // Eq. 1 in DP: (8 + 4 + 8α + 16/N_nzr)/2 = 6 + 4α + 8/N_nzr.
  EXPECT_DOUBLE_EQ(code_balance(8, 1.0, 16.0), 6.0 + 4.0 + 0.5);
  EXPECT_DOUBLE_EQ(code_balance(8, 0.0, 8.0), 6.0 + 1.0);
}

TEST(Balance, IdealAlphaGivesKappaZeroLimit) {
  const double nnzr = 20.0;
  const double b = code_balance(8, alpha_ideal(nnzr), nnzr);
  // 6 + 4/20 + 8/20 = 6.6 bytes/flop.
  EXPECT_NEAR(b, 6.6, 1e-12);
}

TEST(Balance, SpHalvesStaticTerms) {
  EXPECT_NEAR(code_balance(4, 0.0, 1e9), 4.0, 1e-8);  // (4+4)/2
}

TEST(Balance, SplitPenaltyMatchesPaper) {
  // Sec. III-A: result written twice adds 8/N_nzr bytes/flop in DP.
  EXPECT_DOUBLE_EQ(split_kernel_penalty(8, 144.0), 8.0 / 144.0);
}

TEST(Balance, RooflineCapsAtPeak) {
  EXPECT_DOUBLE_EQ(roofline_gflops(515.0, 91.0, 0.01), 515.0);
  EXPECT_DOUBLE_EQ(roofline_gflops(515.0, 91.0, 7.0), 91.0 / 7.0);
}

TEST(Balance, RejectsBadArguments) {
  EXPECT_THROW(code_balance(8, 0.5, 0.0), Error);
  EXPECT_THROW(code_balance(8, -0.1, 8.0), Error);
  EXPECT_THROW(bandwidth_bound_gflops(91.0, 0.0), Error);
}

TEST(PcieImpact, PaperThresholds) {
  // "In the worst case, α = 1/N_nzr and B_GPU ≳ 20 B_PCI lead to
  //  N_nzr <= 25."
  EXPECT_NEAR(nnzr_upper_for_50pct_penalty_worst_alpha(20.0), 25.0, 1.0);
  // "if α = 1 and B_GPU ≈ 10 B_PCI we have N_nzr <= 7."
  EXPECT_NEAR(nnzr_upper_for_50pct_penalty(10.0, 1.0), 7.0, 0.3);
  // "at B_GPU ≈ 10 B_PCI and α = 1 a value of N_nzr ≳ 80 is sufficient."
  EXPECT_NEAR(nnzr_lower_for_10pct_penalty(10.0, 1.0), 80.0, 1.0);
  // "at B_GPU ≈ 20 B_PCI and α = 1/N_nzr one arrives at N_nzr ≳ 266."
  EXPECT_NEAR(nnzr_lower_for_10pct_penalty_worst_alpha(20.0), 266.0, 2.0);
}

TEST(PcieImpact, TimesMatchEqTwo) {
  // T_MVM = 8N [N_nzr (α + 3/2) + 2] / B_GPU, T_PCI = 16N / B_PCI.
  const double n = 1e6;
  EXPECT_DOUBLE_EQ(t_mvm_seconds(n, 10.0, 0.5, 80.0),
                   8.0 * n * (10.0 * 2.0 + 2.0) / 80e9);
  EXPECT_DOUBLE_EQ(t_pci_seconds(n, 8.0), 16.0 * n / 8e9);
}

TEST(PcieImpact, FractionMonotoneInNnzr) {
  double prev = 1.0;
  for (double nnzr : {5.0, 15.0, 50.0, 150.0, 400.0}) {
    const double f = pcie_time_fraction(1e6, nnzr, 0.5, 91.0, 6.0);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(PcieImpact, FiftyPercentAtThreshold) {
  const double alpha = 1.0, ratio = 10.0;
  const double nnzr = nnzr_upper_for_50pct_penalty(ratio, alpha);
  // At the Eq. 3 threshold (ignoring the +2 vector term), T_PCI ≈ T_MVM.
  const double f = pcie_time_fraction(1e6, nnzr, alpha, 91.0, 9.1);
  EXPECT_NEAR(f, 0.5, 0.05);
}

TEST(ModelVsSim, BalancesAgreeWithinTolerance) {
  // Eq. 1 evaluated at the measured α must track the simulator's actual
  // bytes/flop; transaction rounding keeps them within ~25%.
  GenConfig cfg;
  cfg.scale = 64;
  const auto a = make_hmep<double>(cfg);
  const auto r = evaluate(gpusim::DeviceSpec::tesla_c2070(), a,
                          gpusim::FormatKind::ellpack_r, true);
  EXPECT_GT(r.alpha_measured, 0.0);
  EXPECT_NEAR(r.balance_sim / r.balance_model, 1.0, 0.25);
  EXPECT_GT(r.gflops_sim, 0.0);
  EXPECT_LT(r.gflops_with_pcie, r.gflops_sim);
}

TEST(ModelVsSim, ModelBoundsSimWhenBandwidthBound) {
  // For a high-N_nzr matrix the kernel is bandwidth-bound and the Eq. 1
  // prediction is an upper bound within rounding.
  const auto a = make_random_uniform<double>(30000, 120, 5);
  const auto r = evaluate(gpusim::DeviceSpec::tesla_c2070(), a,
                          gpusim::FormatKind::ellpack_r, true);
  EXPECT_LT(r.gflops_sim, r.gflops_model * 1.3);
}

}  // namespace
}  // namespace spmvm::perfmodel
