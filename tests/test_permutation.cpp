#include "sparse/permutation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(Permutation, IdentityMapsToSelf) {
  const auto p = Permutation::identity(5);
  EXPECT_TRUE(p.is_identity());
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(p.old_of(i), i);
    EXPECT_EQ(p.new_of(i), i);
  }
}

TEST(Permutation, SortDescendingFullWindow) {
  const std::vector<index_t> keys = {3, 1, 4, 1, 5};
  const auto p = Permutation::sort_descending(keys, 5);
  // Sorted keys: 5(idx4), 4(idx2), 3(idx0), 1(idx1), 1(idx3) — stable.
  EXPECT_EQ(p.old_of(0), 4);
  EXPECT_EQ(p.old_of(1), 2);
  EXPECT_EQ(p.old_of(2), 0);
  EXPECT_EQ(p.old_of(3), 1);
  EXPECT_EQ(p.old_of(4), 3);
}

TEST(Permutation, SortDescendingIsStable) {
  const std::vector<index_t> keys = {2, 2, 2};
  const auto p = Permutation::sort_descending(keys, 3);
  EXPECT_TRUE(p.is_identity());
}

TEST(Permutation, WindowLimitsSortScope) {
  const std::vector<index_t> keys = {1, 9, 2, 8};
  const auto p = Permutation::sort_descending(keys, 2);
  // Window [0,2): 9,1 -> order 1,0. Window [2,4): 8,2 -> order 3,2.
  EXPECT_EQ(p.old_of(0), 1);
  EXPECT_EQ(p.old_of(1), 0);
  EXPECT_EQ(p.old_of(2), 3);
  EXPECT_EQ(p.old_of(3), 2);
}

TEST(Permutation, WindowOneIsIdentity) {
  const std::vector<index_t> keys = {1, 9, 2, 8};
  EXPECT_TRUE(Permutation::sort_descending(keys, 1).is_identity());
}

TEST(Permutation, InverseConsistency) {
  const std::vector<index_t> keys = {5, 3, 9, 1, 7, 7};
  const auto p = Permutation::sort_descending(keys, 6);
  for (index_t r = 0; r < p.size(); ++r) EXPECT_EQ(p.new_of(p.old_of(r)), r);
  for (index_t i = 0; i < p.size(); ++i) EXPECT_EQ(p.old_of(p.new_of(i)), i);
}

TEST(Permutation, FromNewToOldValidates) {
  EXPECT_NO_THROW(Permutation::from_new_to_old({2, 0, 1}));
  EXPECT_THROW(Permutation::from_new_to_old({0, 0, 1}), Error);   // dup
  EXPECT_THROW(Permutation::from_new_to_old({0, 3, 1}), Error);   // range
  EXPECT_THROW(Permutation::from_new_to_old({0, -1, 1}), Error);  // negative
}

TEST(Permutation, VectorRoundTrip) {
  const auto p = Permutation::from_new_to_old({2, 0, 3, 1});
  const std::vector<double> original = {10, 11, 12, 13};
  std::vector<double> permuted(4), back(4);
  p.to_permuted<double>(original, permuted);
  EXPECT_EQ(permuted, (std::vector<double>{12, 10, 13, 11}));
  p.from_permuted<double>(permuted, back);
  EXPECT_EQ(back, original);
}

}  // namespace
}  // namespace spmvm
