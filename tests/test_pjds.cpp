#include "sparse/pjds.hpp"

#include <gtest/gtest.h>

#include "sparse/ellpack.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

PjdsOptions opts(index_t br, PermuteColumns pc = PermuteColumns::no) {
  PjdsOptions o;
  o.block_rows = br;
  o.permute_columns = pc;
  return o;
}

TEST(Pjds, PaperToyExample) {
  // Fig. 1-style check on a small matrix with br = 4: rows sorted by
  // descending length, blocks padded to the block-local maximum.
  Coo<double> coo(8, 8);
  // Row lengths: 1, 3, 2, 5, 1, 4, 2, 1.
  const index_t lens[] = {1, 3, 2, 5, 1, 4, 2, 1};
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < lens[i]; ++j) coo.add(i, j, 1.0 + i);
  const auto a = Csr<double>::from_coo(std::move(coo));
  const auto p = Pjds<double>::from_csr(a, opts(4));
  p.validate();
  // Sorted lengths: 5 4 3 2 | 2 1 1 1 -> block widths 5 and 2.
  EXPECT_EQ(p.padded_row_len(0), 5);
  EXPECT_EQ(p.padded_row_len(4), 2);
  EXPECT_EQ(p.stored_entries(), 4 * 5 + 4 * 2);
  // ELLPACK would store 8 * 5 = 40.
  EXPECT_LT(p.stored_entries(), 40);
}

TEST(Pjds, WorstCaseBoundFromPaper) {
  // One fully populated row, single entries elsewhere: pJDS stores at most
  // (br + 1) * N - br entries (Sec. II-A), ELLPACK stores N * N.
  const index_t n = 128, br = 32;
  Coo<double> coo(n, n);
  for (index_t j = 0; j < n; ++j) coo.add(0, j, 1.0);
  for (index_t i = 1; i < n; ++i) coo.add(i, 0, 1.0);
  const auto a = Csr<double>::from_coo(std::move(coo));
  const auto p = Pjds<double>::from_csr(a, opts(br));
  const auto e = Ellpack<double>::from_csr(a, br);
  EXPECT_EQ(e.stored_entries(), static_cast<offset_t>(n) * n);
  EXPECT_LE(p.stored_entries(), static_cast<offset_t>(br + 1) * n - br);
}

TEST(Pjds, ConstantRowLengthHasNoOverheadDifference) {
  // rowmax[] == N^max_nzr: ELLPACK and pJDS store the same N * width.
  const auto a = testing::random_csr<double>(96, 96, 6, 6, 21);
  const auto p = Pjds<double>::from_csr(a, opts(32));
  const auto e = Ellpack<double>::from_csr(a, 32);
  EXPECT_EQ(p.stored_entries(), e.stored_entries());
}

TEST(Pjds, RowLengthsNonIncreasing) {
  const auto a = testing::random_csr<double>(200, 200, 0, 25, 22);
  const auto p = Pjds<double>::from_csr(a, opts(32));
  p.validate();  // includes the monotonicity check
}

TEST(Pjds, ColStartMatchesDiagonalLengths) {
  const auto a = testing::random_csr<double>(100, 100, 1, 10, 23);
  const auto p = Pjds<double>::from_csr(a, opts(16));
  offset_t acc = 0;
  for (index_t j = 0; j < p.width; ++j) {
    EXPECT_EQ(p.col_start[static_cast<std::size_t>(j)], acc);
    acc += p.diag_len(j);
  }
  EXPECT_EQ(p.col_start.back(), acc);
  EXPECT_EQ(acc, p.stored_entries());
}

TEST(Pjds, EntriesRecoverCsrRows) {
  const auto a = testing::random_csr<double>(64, 64, 0, 12, 24);
  const auto p = Pjds<double>::from_csr(a, opts(8));
  // Reconstruct each original row from the pJDS arrays and compare.
  for (index_t r = 0; r < p.n_rows; ++r) {
    const index_t orig = p.perm.old_of(r);
    const auto want = a.dense_row(orig);
    std::vector<double> got(static_cast<std::size_t>(a.n_cols), 0.0);
    for (index_t j = 0; j < p.row_len[static_cast<std::size_t>(r)]; ++j) {
      const auto k = static_cast<std::size_t>(
          p.col_start[static_cast<std::size_t>(j)] + r);
      got[static_cast<std::size_t>(p.col_idx[k])] = p.val[k];
    }
    EXPECT_EQ(want, got) << "row " << r;
  }
}

TEST(Pjds, BlockRowsOneEliminatesAllFill) {
  const auto a = testing::random_csr<double>(50, 50, 0, 9, 25);
  const auto p = Pjds<double>::from_csr(a, opts(1));
  EXPECT_EQ(p.stored_entries(), a.nnz());
  EXPECT_DOUBLE_EQ(p.fill_fraction(), 0.0);
}

TEST(Pjds, LargerBlocksNeverStoreLess) {
  const auto a = testing::random_csr<double>(300, 300, 0, 20, 26);
  offset_t prev = 0;
  for (index_t br : {1, 4, 16, 32, 64}) {
    const auto p = Pjds<double>::from_csr(a, opts(br));
    p.validate();
    EXPECT_GE(p.stored_entries(), prev) << "br=" << br;
    prev = p.stored_entries();
  }
}

TEST(Pjds, SymmetricPermutationRecordsFlag) {
  const auto a = testing::random_csr<double>(40, 40, 1, 5, 27);
  EXPECT_FALSE(Pjds<double>::from_csr(a, opts(8)).columns_permuted);
  EXPECT_TRUE(Pjds<double>::from_csr(a, opts(8, PermuteColumns::yes))
                  .columns_permuted);
}

TEST(Pjds, RejectsInvalidBlockRows) {
  const auto a = testing::random_csr<double>(10, 10, 1, 2, 28);
  PjdsOptions o;
  o.block_rows = 0;
  EXPECT_THROW(Pjds<double>::from_csr(a, o), Error);
}

TEST(Pjds, EmptyMatrix) {
  Coo<double> coo(0, 0);
  const auto p =
      Pjds<double>::from_csr(Csr<double>::from_coo(std::move(coo)), opts(32));
  p.validate();
  EXPECT_EQ(p.stored_entries(), 0);
}

TEST(Pjds, PhantomRowsConfinedToLastBlock) {
  const auto a = testing::random_csr<double>(37, 37, 1, 6, 29);
  const auto p = Pjds<double>::from_csr(a, opts(16));
  EXPECT_EQ(p.padded_rows, 48);
  for (index_t i = 37; i < 48; ++i)
    EXPECT_EQ(p.row_len[static_cast<std::size_t>(i)], 0);
}

}  // namespace
}  // namespace spmvm
