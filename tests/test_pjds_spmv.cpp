#include "sparse/pjds_spmv.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "test_helpers.hpp"

namespace spmvm {
namespace {

class PjdsSpmvSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, int>> {};

TEST_P(PjdsSpmvSweep, MatchesReferenceAcrossBlockSizesAndThreads) {
  const auto& [n, br, threads] = GetParam();
  const auto a = testing::random_csr<double>(n, n, 0, 14, 100 + n);
  PjdsOptions o;
  o.block_rows = br;
  o.permute_columns = PermuteColumns::yes;
  const auto p = Pjds<double>::from_csr(a, o);
  p.validate();

  const auto x = testing::random_vector<double>(n, 200 + n);
  std::vector<double> x_perm(static_cast<std::size_t>(n));
  std::vector<double> y_perm(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  p.perm.to_permuted<double>(x, x_perm);
  spmv(p, std::span<const double>(x_perm), std::span<double>(y_perm), threads);
  p.perm.from_permuted<double>(y_perm, y);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, PjdsSpmvSweep,
                         ::testing::Combine(::testing::Values(1, 31, 64, 257),
                                            ::testing::Values(1, 8, 32),
                                            ::testing::Values(1, 4)));

TEST(PjdsSpmv, RowOnlyPermutationUsesOriginalBasisInput) {
  const auto a = testing::random_csr<double>(80, 80, 1, 9, 300);
  PjdsOptions o;
  o.permute_columns = PermuteColumns::no;
  const auto p = Pjds<double>::from_csr(a, o);
  const auto x = testing::random_vector<double>(80, 301);
  std::vector<double> y_perm(80), y(80);
  spmv(p, std::span<const double>(x), std::span<double>(y_perm));
  p.perm.from_permuted<double>(y_perm, y);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(PjdsSpmv, AxpbyMatchesComposition) {
  const auto a = testing::random_csr<double>(60, 60, 1, 7, 302);
  PjdsOptions o;
  o.permute_columns = PermuteColumns::no;
  const auto p = Pjds<double>::from_csr(a, o);
  const auto x = testing::random_vector<double>(60, 303);
  auto y = testing::random_vector<double>(60, 304);
  const auto y0 = y;
  spmv_axpby(p, std::span<const double>(x), std::span<double>(y), 3.0, 0.25);

  std::vector<double> ax(60);
  spmv(p, std::span<const double>(x), std::span<double>(ax));
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], 0.25 * y0[i] + 3.0 * ax[i], 1e-12);
}

TEST(PjdsOperator, HidesPermutationSymmetric) {
  const auto a = testing::random_csr<double>(90, 90, 0, 11, 305);
  PjdsOptions o;
  o.permute_columns = PermuteColumns::yes;
  const PjdsOperator<double> op(Pjds<double>::from_csr(a, o));
  const auto x = testing::random_vector<double>(90, 306);
  std::vector<double> y(90);
  op.apply(std::span<const double>(x), std::span<double>(y));
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(PjdsOperator, HidesPermutationRowOnly) {
  const auto a = testing::random_csr<double>(90, 90, 0, 11, 307);
  PjdsOptions o;
  o.permute_columns = PermuteColumns::no;
  const PjdsOperator<double> op(Pjds<double>::from_csr(a, o));
  const auto x = testing::random_vector<double>(90, 308);
  std::vector<double> y(90);
  op.apply(std::span<const double>(x), std::span<double>(y));
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(PjdsSpmv, FloatPrecision) {
  const auto a = testing::random_csr<float>(70, 70, 1, 8, 309);
  PjdsOptions o;
  o.permute_columns = PermuteColumns::no;
  const auto p = Pjds<float>::from_csr(a, o);
  const auto x = testing::random_vector<float>(70, 310);
  std::vector<float> y_perm(70), y(70);
  spmv(p, std::span<const float>(x), std::span<float>(y_perm));
  p.perm.from_permuted<float>(y_perm, y);
  testing::expect_vectors_near<float>(testing::reference_spmv(a, x), y, 1e-5);
}

}  // namespace
}  // namespace spmvm
