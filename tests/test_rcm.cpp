#include "sparse/rcm.hpp"

#include <gtest/gtest.h>

#include "gpusim/gpu_spmv.hpp"
#include "matgen/generators.hpp"
#include "sparse/convert.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace spmvm {
namespace {

TEST(Bandwidth, KnownValues) {
  EXPECT_EQ(bandwidth(make_banded<double>(50, 3)), 3);
  Coo<double> coo(10, 10);
  for (index_t i = 0; i < 10; ++i) coo.add(i, i, 1.0);
  EXPECT_EQ(bandwidth(Csr<double>::from_coo(std::move(coo))), 0);
}

TEST(Rcm, IsValidPermutation) {
  const auto a = spmvm::testing::random_csr<double>(200, 200, 1, 6, 1);
  const auto p = reverse_cuthill_mckee(a);
  EXPECT_EQ(p.size(), 200);
  // Permuting must preserve the product (P A Pᵀ identity check).
  const auto b = permute_csr(a, p, PermuteColumns::yes);
  b.validate();
  EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(Rcm, RecoversBandStructureFromShuffledBandedMatrix) {
  // Shuffle a banded matrix; RCM must bring the bandwidth back near the
  // original band.
  const auto banded = make_banded<double>(300, 3);
  Rng rng(7);
  std::vector<index_t> shuffle(300);
  for (index_t i = 0; i < 300; ++i) shuffle[static_cast<std::size_t>(i)] = i;
  for (index_t i = 299; i > 0; --i)
    std::swap(shuffle[static_cast<std::size_t>(i)],
              shuffle[static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(i) + 1))]);
  const auto scrambled = permute_csr(
      banded, Permutation::from_new_to_old(shuffle), PermuteColumns::yes);
  ASSERT_GT(bandwidth(scrambled), 50);

  const auto p = reverse_cuthill_mckee(scrambled);
  const auto restored = permute_csr(scrambled, p, PermuteColumns::yes);
  EXPECT_LT(bandwidth(restored), 12);  // within ~4x of the true band
}

TEST(Rcm, ReducesBandwidthOfStencil) {
  // 2D stencil numbered row-by-row already has bandwidth nx; RCM must
  // not make it dramatically worse (level sets give comparable width).
  const auto a = make_poisson2d<double>(20, 20);
  const auto p = reverse_cuthill_mckee(a);
  const auto b = permute_csr(a, p, PermuteColumns::yes);
  EXPECT_LE(bandwidth(b), 2 * bandwidth(a));
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two independent chains.
  Coo<double> coo(10, 10);
  for (index_t i = 0; i < 4; ++i) coo.add_symmetric(i, i + 1, 1.0);
  for (index_t i = 6; i < 9; ++i) coo.add_symmetric(i, i + 1, 1.0);
  coo.add(5, 5, 1.0);  // isolated with self-loop
  const auto a = Csr<double>::from_coo(std::move(coo));
  const auto p = reverse_cuthill_mckee(a);
  EXPECT_EQ(p.size(), 10);  // every vertex appears exactly once
}

TEST(Rcm, WorksOnNonsymmetricPattern) {
  Coo<double> coo(6, 6);
  coo.add(0, 5, 1.0);  // only one direction present
  coo.add(1, 2, 1.0);
  coo.add(3, 3, 1.0);
  const auto a = Csr<double>::from_coo(std::move(coo));
  EXPECT_NO_THROW(reverse_cuthill_mckee(a));
}

TEST(Rcm, ImprovesMeasuredAlphaOnScrambledMatrix) {
  // The payoff the simulator can see: a locality-destroyed matrix has a
  // high RHS re-load factor; RCM restores locality and lowers α.
  // The vector (2 MB) must exceed the 768 kB L2 for scrambling to hurt.
  constexpr index_t kN = 250000;
  const auto banded = make_banded<double>(kN, 6);
  Rng rng(11);
  std::vector<index_t> shuffle(kN);
  for (index_t i = 0; i < kN; ++i)
    shuffle[static_cast<std::size_t>(i)] = i;
  for (index_t i = kN - 1; i > 0; --i)
    std::swap(shuffle[static_cast<std::size_t>(i)],
              shuffle[static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(i) + 1))]);
  const auto scrambled = permute_csr(
      banded, Permutation::from_new_to_old(shuffle), PermuteColumns::yes);
  const auto restored = permute_csr(scrambled,
                                    reverse_cuthill_mckee(scrambled),
                                    PermuteColumns::yes);

  const auto dev = gpusim::DeviceSpec::tesla_c2070();
  const auto before =
      gpusim::simulate_format(dev, scrambled, gpusim::FormatKind::ellpack_r);
  const auto after =
      gpusim::simulate_format(dev, restored, gpusim::FormatKind::ellpack_r);
  EXPECT_LT(after.stats.measured_alpha(8),
            0.5 * before.stats.measured_alpha(8));
  EXPECT_GT(after.gflops, before.gflops);
}

}  // namespace
}  // namespace spmvm
