#include "obs/regress.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spmvm::obs {
namespace {

BenchEntry entry(const std::string& name, double mean, double stddev,
                 std::vector<std::pair<std::string, double>> counters = {}) {
  BenchEntry e;
  e.name = name;
  e.repetitions = 5;
  e.mean_seconds = mean;
  e.median_seconds = mean;
  e.min_seconds = mean - stddev;
  e.max_seconds = mean + stddev;
  e.stddev_seconds = stddev;
  e.counters = std::move(counters);
  return e;
}

BenchReport report(std::vector<BenchEntry> entries) {
  BenchReport r;
  r.binary = "test";
  r.entries = std::move(entries);
  return r;
}

const MetricDelta* find_delta(const RegressResult& r, const std::string& entry,
                              const std::string& metric) {
  for (const MetricDelta& d : r.deltas)
    if (d.entry == entry && d.metric == metric) return &d;
  return nullptr;
}

TEST(Regress, DetectsTimingRegression) {
  const auto base = report({entry("host/csr", 1.0, 0.001)});
  const auto cur = report({entry("host/csr", 1.3, 0.001)});
  const RegressResult r = compare(base, cur);
  EXPECT_FALSE(r.passed);
  EXPECT_EQ(r.n_regressions, 1);
  const MetricDelta* d = find_delta(r, "host/csr", "mean_seconds");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, DeltaStatus::regression);
  EXPECT_NEAR(d->rel_change, 0.3, 1e-9);
}

TEST(Regress, NoiseWindowAbsorbsJitter) {
  // +8% mean shift, but both runs carry 5% per-rep stddev: the pooled
  // noise window (3·sqrt(2)·0.05 ≈ 0.21) absorbs it.
  const auto base = report({entry("host/csr", 1.0, 0.05)});
  const auto cur = report({entry("host/csr", 1.08, 0.05)});
  const RegressResult r = compare(base, cur);
  EXPECT_TRUE(r.passed);
  const MetricDelta* d = find_delta(r, "host/csr", "mean_seconds");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, DeltaStatus::ok);
  EXPECT_GT(d->allowed, 0.08);
}

TEST(Regress, DeterministicMetricHeldToRelTol) {
  // stddev 0 (a model output): only rel_tol applies.
  const auto base = report({entry("model/DLR1", 1.0, 0.0)});
  EXPECT_TRUE(compare(base, report({entry("model/DLR1", 1.04, 0.0)})).passed);
  EXPECT_FALSE(compare(base, report({entry("model/DLR1", 1.06, 0.0)})).passed);
}

TEST(Regress, ImprovementDoesNotGate) {
  const auto base = report({entry("host/csr", 1.0, 0.001)});
  const auto cur = report({entry("host/csr", 0.5, 0.001)});
  const RegressResult r = compare(base, cur);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.n_improvements, 1);
  EXPECT_EQ(find_delta(r, "host/csr", "mean_seconds")->status,
            DeltaStatus::improved);
}

TEST(Regress, SameRunPassesItself) {
  const auto base = report({entry("host/csr", 1.0, 0.02,
                                  {{"GF/s", 12.0}, {"alpha", 0.4}}),
                            entry("model/DLR1", 0.001, 0.0)});
  const RegressResult r = compare(base, base);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.n_regressions, 0);
  EXPECT_EQ(r.n_improvements, 0);
}

TEST(Regress, RemovedEntryGatesByDefault) {
  const auto base =
      report({entry("host/csr", 1.0, 0.0), entry("host/jds", 1.0, 0.0)});
  const auto cur = report({entry("host/csr", 1.0, 0.0)});
  const RegressResult r = compare(base, cur);
  EXPECT_FALSE(r.passed);
  const MetricDelta* d = find_delta(r, "host/jds", "(entry)");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, DeltaStatus::removed);

  RegressOptions opt;
  opt.fail_on_removed = false;
  EXPECT_TRUE(compare(base, cur, opt).passed);
}

TEST(Regress, AddedEntryIsInformational) {
  const auto base = report({entry("host/csr", 1.0, 0.0)});
  const auto cur =
      report({entry("host/csr", 1.0, 0.0), entry("host/new", 1.0, 0.0)});
  const RegressResult r = compare(base, cur);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(find_delta(r, "host/new", "(entry)")->status, DeltaStatus::added);
}

TEST(Regress, RemovedCounterGatesAddedCounterDoesNot) {
  const auto base = report({entry("host/csr", 1.0, 0.0, {{"GF/s", 10.0}})});
  const auto cur = report({entry("host/csr", 1.0, 0.0, {{"GB/s", 80.0}})});
  const RegressResult r = compare(base, cur);
  EXPECT_FALSE(r.passed);
  EXPECT_EQ(find_delta(r, "host/csr", "GF/s")->status, DeltaStatus::removed);
  EXPECT_EQ(find_delta(r, "host/csr", "GB/s")->status, DeltaStatus::added);
}

TEST(Regress, RateCounterGatesOnDropOnly) {
  const auto base = report({entry("host/csr", 1.0, 0.0, {{"GF/s", 10.0}})});
  EXPECT_FALSE(
      compare(base, report({entry("host/csr", 1.0, 0.0, {{"GF/s", 8.0}})}))
          .passed);
  const RegressResult up =
      compare(base, report({entry("host/csr", 1.0, 0.0, {{"GF/s", 12.0}})}));
  EXPECT_TRUE(up.passed);
  EXPECT_EQ(find_delta(up, "host/csr", "GF/s")->status, DeltaStatus::improved);
}

TEST(Regress, CounterWindowInheritsTimingNoise) {
  // Counters derive from the entry's timing, so a jittery entry earns a
  // wider counter window: a -20% GF/s drop passes under 10% per-run
  // timing noise (3·sqrt(2)·10% ≈ 42% window) but gates when quiet.
  const auto base = report({entry("host/csr", 1.0, 0.1, {{"GF/s", 10.0}})});
  const auto cur = report({entry("host/csr", 1.0, 0.1, {{"GF/s", 8.0}})});
  EXPECT_TRUE(compare(base, cur).passed);
  const auto qbase = report({entry("host/csr", 1.0, 0.0, {{"GF/s", 10.0}})});
  const auto qcur = report({entry("host/csr", 1.0, 0.0, {{"GF/s", 8.0}})});
  EXPECT_FALSE(compare(qbase, qcur).passed);
}

TEST(Regress, NonRateCounterGatesOnAnyDrift) {
  const auto base = report({entry("model/DLR1", 1.0, 0.0, {{"alpha", 0.50}})});
  EXPECT_FALSE(
      compare(base, report({entry("model/DLR1", 1.0, 0.0, {{"alpha", 0.70}})}))
          .passed);
  EXPECT_FALSE(
      compare(base, report({entry("model/DLR1", 1.0, 0.0, {{"alpha", 0.30}})}))
          .passed);
  EXPECT_TRUE(
      compare(base, report({entry("model/DLR1", 1.0, 0.0, {{"alpha", 0.51}})}))
          .passed);
}

TEST(Regress, SchemaMismatchRefusesToCompare) {
  auto base = report({entry("host/csr", 1.0, 0.0)});
  auto cur = report({entry("host/csr", 5.0, 0.0)});  // would be a regression
  base.schema_version = 0;
  const RegressResult r = compare(base, cur);
  EXPECT_TRUE(r.schema_mismatch);
  EXPECT_FALSE(r.passed);
  EXPECT_TRUE(r.deltas.empty());  // no metric diff across layouts
  EXPECT_NE(r.render().find("schema mismatch"), std::string::npos);

  RegressOptions opt;
  opt.fail_on_schema = false;
  EXPECT_TRUE(compare(base, cur, opt).passed);
}

TEST(Regress, NameFilterLimitsGating) {
  const auto base =
      report({entry("host/csr", 1.0, 0.0), entry("model/DLR1", 1.0, 0.0)});
  const auto cur =
      report({entry("host/csr", 9.0, 0.0), entry("model/DLR1", 1.0, 0.0)});
  RegressOptions opt;
  opt.name_filter = "model/";
  const RegressResult r = compare(base, cur, opt);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(find_delta(r, "host/csr", "mean_seconds"), nullptr);
}

TEST(Regress, RenderNamesTheRegression) {
  const auto base = report({entry("host/csr", 1.0, 0.0)});
  const auto cur = report({entry("host/csr", 2.0, 0.0)});
  const std::string text = compare(base, cur).render();
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("host/csr"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  const std::string ok = compare(base, base).render();
  EXPECT_NE(ok.find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace spmvm::obs
