#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spmvm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) seen[rng.next_below(8)]++;
  for (int c : seen) EXPECT_GT(c, 300);  // roughly uniform over 8 bins
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(17);
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ExponentialIntMeanApproximatesParameter) {
  Rng rng(29);
  double acc = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    acc += static_cast<double>(rng.exponential_int(10.0));
  // Flooring shifts the mean down by ~0.5.
  EXPECT_NEAR(acc / n, 9.5, 0.5);
}

TEST(Rng, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace spmvm
