// The serving layer's contracts (DESIGN.md §14): admission control
// sheds load with a reason instead of growing the queue, batched
// block-RHS launches are bit-identical to serving the same requests one
// at a time on every backend, shutdown drains every accepted ticket,
// and cancellation/deadlines are honored cooperatively. The
// concurrency cases double as the tsan-concurrency preset's coverage
// of the queue/worker interplay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

using namespace spmvm;
using namespace spmvm::serve;

namespace {

using spmvm::testing::random_csr;
using spmvm::testing::random_vector;

std::shared_ptr<Request> make_request(const std::string& matrix) {
  auto r = std::make_shared<Request>();
  r->matrix = matrix;
  return r;
}

/// Serve `xs` against `a` on `backend` with the given batch ceiling:
/// submit everything while the workers are still parked, then start,
/// so a max_batch > 1 server coalesces deterministically.
std::vector<std::vector<double>> serve_all(
    const std::string& backend, int max_batch, const Csr<double>& a,
    const std::vector<std::vector<double>>& xs, int* width_seen = nullptr) {
  ServerOptions opt;
  opt.backend = backend;
  opt.n_workers = 1;
  opt.max_batch = max_batch;
  opt.max_batch_wait_s = 0.05;
  Server server(opt);
  server.register_matrix("m", a);
  std::vector<Ticket> tickets;
  tickets.reserve(xs.size());
  for (const auto& x : xs) tickets.push_back(server.submit("m", x));
  server.start();
  std::vector<std::vector<double>> ys;
  for (Ticket& t : tickets) {
    Response r = t.get();
    EXPECT_EQ(r.status, RequestStatus::ok) << to_string(r.status);
    EXPECT_GE(r.batch_width, 1);
    EXPECT_LE(r.batch_width, max_batch);
    if (width_seen != nullptr) *width_seen = std::max(*width_seen, r.batch_width);
    ys.push_back(std::move(r.y));
  }
  server.shutdown();
  return ys;
}

}  // namespace

// ---- batcher model ---------------------------------------------------------

TEST(ServeBatcher, WidthRespectsBounds) {
  EXPECT_EQ(target_batch_width(8, 0.2, 7.0, 1, 0.02), 1);
  EXPECT_EQ(target_batch_width(8, 0.2, 7.0, 0, 0.02), 1);
  // A gain threshold above the first step's gain keeps k at 1.
  EXPECT_EQ(target_batch_width(8, 0.2, 7.0, 8, 0.99), 1);
  // A zero threshold walks to the ceiling (B(k) strictly decreases).
  EXPECT_EQ(target_batch_width(8, 0.2, 7.0, 8, 0.0), 8);
}

TEST(ServeBatcher, WidthShrinksWithVectorHeavyBalance) {
  // The matrix term (s+4)/k is what k amortizes; when α and the vector
  // sweeps dominate (dense rows, high α), widening pays off less and
  // the model stops earlier.
  const int sparse_heavy = target_batch_width(8, 0.05, 4.0, 64, 0.02);
  const int vector_heavy = target_batch_width(8, 2.0, 4.0, 64, 0.02);
  EXPECT_LT(vector_heavy, sparse_heavy);
  EXPECT_GE(vector_heavy, 1);
}

TEST(ServeBatcher, WidthMonotoneInThreshold) {
  int prev = 1 << 20;
  for (const double gain : {0.0, 0.01, 0.05, 0.2, 0.8}) {
    const int k = target_batch_width(8, 0.3, 10.0, 32, gain);
    EXPECT_LE(k, prev) << "gain " << gain;
    prev = k;
  }
}

// ---- admission queue -------------------------------------------------------

TEST(ServeQueue, WatermarkShedsAndCountsDepth) {
  RequestQueue q(/*capacity=*/8, /*watermark=*/4);
  EXPECT_EQ(q.watermark(), 4);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(q.push(make_request("m")), Admit::accepted);
  EXPECT_EQ(q.depth(), 4);
  // Above the watermark the queue sheds instead of growing.
  EXPECT_EQ(q.push(make_request("m")), Admit::rejected_full);
  EXPECT_EQ(q.depth(), 4);
}

TEST(ServeQueue, WatermarkDefaultsToCapacity) {
  RequestQueue q(3);
  EXPECT_EQ(q.watermark(), 3);
  RequestQueue clamped(3, 99);
  EXPECT_EQ(clamped.watermark(), 3);
}

TEST(ServeQueue, ShutdownRejectsNewAndDrainsOld) {
  RequestQueue q(8);
  EXPECT_EQ(q.push(make_request("a")), Admit::accepted);
  EXPECT_EQ(q.push(make_request("b")), Admit::accepted);
  q.shutdown();
  EXPECT_EQ(q.push(make_request("c")), Admit::rejected_shutdown);
  // Queued work still drains FIFO, then pop signals exit.
  auto r1 = q.pop();
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->matrix, "a");
  auto r2 = q.pop();
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->matrix, "b");
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(ServeQueue, PopMatchingIsSelectiveAndFifo) {
  RequestQueue q(16);
  q.push(make_request("a"));
  q.push(make_request("b"));
  q.push(make_request("a"));
  q.push(make_request("a"));
  std::vector<std::shared_ptr<Request>> out;
  EXPECT_EQ(q.pop_matching("a", 2, &out), 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->matrix, "a");
  EXPECT_EQ(out[1]->matrix, "a");
  EXPECT_EQ(q.depth(), 2);  // "b" and one "a" remain
  EXPECT_EQ(q.pop_matching("c", 4, &out), 0);
  auto front = q.pop();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front->matrix, "b");
}

TEST(ServeQueue, WaitForPushSeesArrivals) {
  RequestQueue q(8);
  const std::uint64_t seen = q.push_seq();
  // Deadline already passed and nothing new: returns false.
  EXPECT_FALSE(q.wait_for_push(seen, Clock::now()));
  std::thread pusher([&] { q.push(make_request("m")); });
  EXPECT_TRUE(q.wait_for_push(
      seen, Clock::now() + std::chrono::seconds(30)));
  pusher.join();
}

// ---- server: correctness ---------------------------------------------------

TEST(Serve, BatchedBitIdenticalToIndividualOnEveryBackend) {
  const auto a = random_csr<double>(48, 48, 0, 7, 21);
  std::vector<std::vector<double>> xs;
  for (int i = 0; i < 8; ++i)
    xs.push_back(random_vector<double>(48, 100 + static_cast<unsigned>(i)));

  for (const char* backend : {"host", "gpusim", "hybrid", "auto"}) {
    SCOPED_TRACE(backend);
    int width = 0;
    const auto batched = serve_all(backend, /*max_batch=*/8, a, xs, &width);
    const auto individual = serve_all(backend, /*max_batch=*/1, a, xs);
    // The coalescer actually batched (all 8 were queued before start).
    EXPECT_GT(width, 1);
    ASSERT_EQ(batched.size(), individual.size());
    for (std::size_t v = 0; v < batched.size(); ++v) {
      ASSERT_EQ(batched[v].size(), individual[v].size());
      for (std::size_t i = 0; i < batched[v].size(); ++i)
        EXPECT_EQ(batched[v][i], individual[v][i])
            << "vector " << v << " row " << i;
    }
  }
}

TEST(Serve, ModelBatchWidthIsExposedPerMatrix) {
  ServerOptions opt;
  opt.backend = "host";
  opt.max_batch = 8;
  Server server(opt);
  server.register_matrix("m", random_csr<double>(32, 32, 2, 5, 3));
  const int k = server.batch_width("m");
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 8);
  EXPECT_THROW(server.batch_width("nope"), Error);
}

TEST(Serve, RejectsInvalidRequestsImmediately) {
  Server server;
  server.register_matrix("m", random_csr<double>(16, 16, 1, 3, 9));
  Ticket unknown = server.submit("ghost", std::vector<double>(16, 1.0));
  Response r = unknown.get();
  EXPECT_EQ(r.status, RequestStatus::rejected_invalid);
  EXPECT_NE(r.error.find("ghost"), std::string::npos);
  Ticket wrong = server.submit("m", std::vector<double>(5, 1.0));
  EXPECT_EQ(wrong.get().status, RequestStatus::rejected_invalid);
  EXPECT_EQ(server.stats().rejected_invalid, 2u);
}

// ---- server: overload, drain, cancellation ---------------------------------

TEST(Serve, AdmissionControlShedsOverload) {
  ServerOptions opt;
  opt.queue_capacity = 8;
  opt.admit_watermark = 4;
  Server server(opt);
  server.register_matrix("m", random_csr<double>(16, 16, 1, 3, 5));
  // Workers parked: every accepted request stays queued, so the 5th
  // submission must be shed — the queue cannot grow past the watermark.
  std::vector<Ticket> tickets;
  for (int i = 0; i < 10; ++i)
    tickets.push_back(server.submit("m", std::vector<double>(16, 1.0)));
  EXPECT_EQ(server.queue_depth(), 4);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted, 4u);
  EXPECT_EQ(s.rejected_full, 6u);
  // Shed tickets resolved immediately with the reason.
  EXPECT_EQ(tickets[9].get().status, RequestStatus::rejected_full);
  // Starting late still serves the admitted backlog.
  server.start();
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(tickets[static_cast<std::size_t>(i)].get().status,
              RequestStatus::ok);
  server.shutdown();
}

TEST(Serve, ShutdownDrainsEveryAcceptedTicket) {
  ServerOptions opt;
  opt.n_workers = 2;
  opt.queue_capacity = 64;
  opt.max_batch_wait_s = 0.0;
  Server server(opt);
  server.register_matrix("m", random_csr<double>(24, 24, 1, 4, 17));
  server.start();
  std::vector<Ticket> tickets;
  for (int i = 0; i < 32; ++i)
    tickets.push_back(server.submit("m", random_vector<double>(24, 40 + static_cast<unsigned>(i))));
  server.shutdown();
  std::uint64_t ok = 0;
  for (Ticket& t : tickets) {
    const Response r = t.get();  // must not hang: drain resolves all
    EXPECT_EQ(r.status, RequestStatus::ok) << to_string(r.status);
    if (r.ok()) ++ok;
  }
  EXPECT_EQ(server.stats().completed, ok);
  // Post-shutdown submissions are rejected with the reason.
  Ticket late = server.submit("m", std::vector<double>(24, 1.0));
  EXPECT_EQ(late.get().status, RequestStatus::rejected_shutdown);
}

TEST(Serve, CancellationBeforeLaunchIsHonored) {
  ServerOptions opt;
  opt.n_workers = 1;
  Server server(opt);
  server.register_matrix("m", random_csr<double>(16, 16, 1, 3, 2));
  Ticket t = server.submit("m", std::vector<double>(16, 1.0));
  t.cancel();  // workers not started: cancel wins the race by design
  server.start();
  EXPECT_EQ(t.get().status, RequestStatus::cancelled);
  server.shutdown();
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(Serve, DeadlineExpiryBeforeLaunchTimesOut) {
  ServerOptions opt;
  opt.n_workers = 1;
  Server server(opt);
  server.register_matrix("m", random_csr<double>(16, 16, 1, 3, 2));
  Ticket t =
      server.submit("m", std::vector<double>(16, 1.0), /*deadline_s=*/1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.start();
  EXPECT_EQ(t.get().status, RequestStatus::timed_out);
  server.shutdown();
  EXPECT_EQ(server.stats().timed_out, 1u);
}

// ---- server: concurrency (tsan-concurrency preset coverage) ----------------

TEST(Serve, ConcurrentClientsAgainstMultipleMatrices) {
  ServerOptions opt;
  opt.n_workers = 3;
  opt.queue_capacity = 512;
  opt.max_batch = 4;
  opt.max_batch_wait_s = 1e-4;
  Server server(opt);
  server.register_matrix("a", random_csr<double>(32, 32, 1, 5, 7));
  server.register_matrix("b", random_csr<double>(20, 20, 0, 6, 8));
  server.start();

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const bool first = (c + i) % 2 == 0;
        Ticket t = server.submit(
            first ? "a" : "b",
            std::vector<double>(first ? 32 : 20, 1.0 + 0.25 * i));
        const Response r = t.get();
        if (r.status == RequestStatus::ok)
          ok.fetch_add(1);
        else if (r.status == RequestStatus::rejected_full)
          shed.fetch_add(1);
        else
          other.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown();
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + shed.load(), kClients * kPerClient);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(ok.load()));
  EXPECT_GE(s.batches, 1u);
}

TEST(Serve, ConcurrentSubmittersUnderOverloadStayBounded) {
  ServerOptions opt;
  opt.n_workers = 1;
  opt.queue_capacity = 16;
  opt.admit_watermark = 8;
  opt.max_batch_wait_s = 0.0;
  Server server(opt);
  server.register_matrix("m", random_csr<double>(64, 64, 2, 8, 3));
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<int> submitted{0};
  std::vector<std::thread> clients;
  std::mutex tickets_mutex;
  std::vector<Ticket> tickets;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        Ticket t = server.submit("m", std::vector<double>(64, 0.5));
        submitted.fetch_add(1);
        std::lock_guard<std::mutex> lk(tickets_mutex);
        tickets.push_back(std::move(t));
      }
    });
  }
  while (submitted.load() < 400) std::this_thread::yield();
  // Depth is sampled racily, but can never exceed the watermark.
  EXPECT_LE(server.queue_depth(), 8);
  stop.store(true);
  for (auto& t : clients) t.join();
  server.shutdown();
  for (Ticket& t : tickets) {
    const RequestStatus s = t.get().status;
    EXPECT_TRUE(s == RequestStatus::ok || s == RequestStatus::rejected_full ||
                s == RequestStatus::rejected_shutdown)
        << to_string(s);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted,
            s.completed + s.timed_out + s.cancelled + s.failed +
                static_cast<std::uint64_t>(0));
}
