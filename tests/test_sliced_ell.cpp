#include "sparse/sliced_ell.hpp"

#include <gtest/gtest.h>

#include "sparse/ellpack.hpp"
#include "sparse/spmv_host.hpp"
#include "test_helpers.hpp"

namespace spmvm {
namespace {

TEST(SlicedEll, SliceGeometry) {
  const auto a = testing::random_csr<double>(70, 70, 0, 8, 1);
  const auto s = SlicedEll<double>::from_csr(a, 32);
  s.validate();
  EXPECT_EQ(s.n_slices, 3);
  EXPECT_EQ(s.padded_rows, 96);
  EXPECT_TRUE(s.perm.is_identity());  // σ = 1
}

TEST(SlicedEll, StoresLessThanEllpack) {
  const auto a = testing::random_csr<double>(256, 256, 1, 32, 2);
  const auto e = Ellpack<double>::from_csr(a, 32);
  const auto s = SlicedEll<double>::from_csr(a, 32);
  EXPECT_LE(s.stored_entries(), e.stored_entries());
}

TEST(SlicedEll, FullSortMinimizesFill) {
  const auto a = testing::random_csr<double>(256, 256, 1, 32, 3);
  const auto unsorted = SlicedEll<double>::from_csr(a, 32, 1);
  const auto sorted =
      SlicedEll<double>::from_csr(a, 32, a.n_rows, PermuteColumns::no);
  EXPECT_LE(sorted.stored_entries(), unsorted.stored_entries());
}

TEST(SlicedEll, SpmvMatchesReferenceUnsorted) {
  const auto a = testing::random_csr<double>(100, 100, 0, 12, 4);
  const auto s = SlicedEll<double>::from_csr(a, 16);
  const auto x = testing::random_vector<double>(100, 5);
  std::vector<double> y(100);
  spmv(s, std::span<const double>(x), std::span<double>(y));
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(SlicedEll, SpmvMatchesReferenceSortedWindows) {
  for (index_t sigma : {4, 32, 100}) {
    const auto a = testing::random_csr<double>(100, 100, 0, 12, 6);
    const auto s =
        SlicedEll<double>::from_csr(a, 16, sigma, PermuteColumns::no);
    const auto x = testing::random_vector<double>(100, 7);
    std::vector<double> y_perm(100), y(100);
    spmv(s, std::span<const double>(x), std::span<double>(y_perm));
    s.perm.from_permuted<double>(y_perm, y);
    SCOPED_TRACE(::testing::Message() << "sigma=" << sigma);
    testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                         1e-12);
  }
}

TEST(SlicedEll, SpmvSymmetricPermutation) {
  const auto a = testing::random_csr<double>(90, 90, 1, 9, 8);
  const auto s = SlicedEll<double>::from_csr(a, 8, 90, PermuteColumns::yes);
  const auto x = testing::random_vector<double>(90, 9);
  std::vector<double> x_perm(90), y_perm(90), y(90);
  s.perm.to_permuted<double>(x, x_perm);
  spmv(s, std::span<const double>(x_perm), std::span<double>(y_perm));
  s.perm.from_permuted<double>(y_perm, y);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(SlicedEll, SliceHeightOneIsCsrLike) {
  const auto a = testing::random_csr<double>(40, 40, 0, 7, 10);
  const auto s = SlicedEll<double>::from_csr(a, 1);
  // Each slice is one row padded to itself: zero fill.
  EXPECT_EQ(s.stored_entries(), a.nnz());
  EXPECT_DOUBLE_EQ(s.fill_fraction(), 0.0);
}

}  // namespace
}  // namespace spmvm
