#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "matgen/generators.hpp"
#include "solver/cg.hpp"
#include "solver/kernels.hpp"
#include "solver/lanczos.hpp"
#include "test_helpers.hpp"

namespace spmvm::solver {
namespace {

using spmvm::testing::random_vector;

TEST(Kernels, DotAxpyScale) {
  std::vector<double> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ((dot<double>(a, b)), 32.0);
  EXPECT_DOUBLE_EQ(norm2<double>(std::span<const double>(b)),
                   std::sqrt(77.0));
  axpy<double>(2.0, a, b);  // b = {6, 9, 12}
  EXPECT_EQ(b, (std::vector<double>{6, 9, 12}));
  scale<double>(0.5, b);
  EXPECT_EQ(b, (std::vector<double>{3, 4.5, 6}));
  xpay<double>(a, 2.0, b);  // b = a + 2b
  EXPECT_EQ(b, (std::vector<double>{7, 11, 15}));
}

TEST(Cg, SolvesPoisson2d) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(16, 16));
  const auto op = make_operator<double>(a);
  const auto x_true = random_vector<double>(a->n_rows, 1);
  std::vector<double> b(static_cast<std::size_t>(a->n_rows));
  op.apply(std::span<const double>(x_true), std::span<double>(b));

  std::vector<double> x(b.size(), 0.0);
  const auto r = cg(op, std::span<const double>(b), std::span<double>(x),
                    1e-12, 2000);
  EXPECT_TRUE(r.converged);
  spmvm::testing::expect_vectors_near<double>(x_true, x, 1e-7);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(8, 8));
  const auto op = make_operator<double>(a);
  std::vector<double> b(64, 0.0), x(64, 0.0);
  const auto r = cg(op, std::span<const double>(b), std::span<double>(x));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Cg, ReportsResidualAccurately) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson3d<double>(6, 6, 6));
  const auto op = make_operator<double>(a);
  const auto b = random_vector<double>(a->n_rows, 2);
  std::vector<double> x(b.size(), 0.0);
  const auto r = cg(op, std::span<const double>(b), std::span<double>(x),
                    1e-10, 2000);
  ASSERT_TRUE(r.converged);
  // Recompute ||b - A x|| independently.
  std::vector<double> ax(b.size());
  op.apply(std::span<const double>(x), std::span<double>(ax));
  double res = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i)
    res += (b[i] - ax[i]) * (b[i] - ax[i]);
  EXPECT_NEAR(std::sqrt(res), r.residual_norm,
              1e-8 * norm2<double>(std::span<const double>(b)));
}

TEST(Cg, PjdsVariantMatchesCsrSolution) {
  // The paper's workflow: iterate in the permuted pJDS basis, permuting
  // only at entry and exit. The solution must match plain CSR CG.
  const auto csr = make_poisson2d<double>(20, 20);
  const auto b = random_vector<double>(csr.n_rows, 3);

  std::vector<double> x_csr(b.size(), 0.0), x_pjds(b.size(), 0.0);
  const auto a = std::make_shared<const Csr<double>>(csr);
  const auto rc = cg(make_operator<double>(a), std::span<const double>(b),
                     std::span<double>(x_csr), 1e-12, 2000);
  const auto rp = cg_pjds(csr, std::span<const double>(b),
                          std::span<double>(x_pjds), 1e-12, 2000);
  EXPECT_TRUE(rc.converged);
  EXPECT_TRUE(rp.converged);
  spmvm::testing::expect_vectors_near<double>(x_csr, x_pjds, 1e-7);
}

TEST(Cg, PjdsUsesNontrivialPermutation) {
  // Ensure the pJDS path actually permutes (matrix with varying row
  // lengths) and still solves correctly.
  const auto banded = make_banded<double>(300, 6);
  const auto b = random_vector<double>(300, 4);
  std::vector<double> x(300, 0.0);
  const auto r = cg_pjds(banded, std::span<const double>(b),
                         std::span<double>(x), 1e-10, 3000);
  EXPECT_TRUE(r.converged);
  std::vector<double> ax(300);
  spmv(banded, std::span<const double>(x), std::span<double>(ax));
  spmvm::testing::expect_vectors_near<double>(b, ax, 1e-6);
}

TEST(Cg, NonSpdBailsOutGracefully) {
  // Indefinite diagonal matrix: p·Ap goes non-positive; CG must stop
  // without claiming convergence.
  Coo<double> coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, -1.0);
  coo.add(2, 2, 1.0);
  coo.add(3, 3, -2.0);
  const auto a = std::make_shared<const Csr<double>>(
      Csr<double>::from_coo(std::move(coo)));
  const std::vector<double> b = {1, 1, 1, 1};
  std::vector<double> x(4, 0.0);
  const auto r = cg(make_operator<double>(a), std::span<const double>(b),
                    std::span<double>(x), 1e-12, 100);
  EXPECT_FALSE(r.converged);
}

TEST(Tridiag, SingleElement) {
  const double alpha[] = {3.5};
  EXPECT_NEAR(tridiag_max_eigenvalue(alpha, {}), 3.5, 1e-10);
}

TEST(Tridiag, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  const double alpha[] = {2.0, 2.0};
  const double beta[] = {1.0};
  EXPECT_NEAR(tridiag_max_eigenvalue(alpha, beta), 3.0, 1e-10);
}

TEST(Tridiag, LaplacianChain) {
  // Tridiag(-1, 2, -1) of size n: max eigenvalue 2 + 2 cos(pi/(n+1)).
  const int n = 10;
  std::vector<double> alpha(n, 2.0), beta(n - 1, -1.0);
  const double expect = 2.0 + 2.0 * std::cos(M_PI / (n + 1));
  EXPECT_NEAR(tridiag_max_eigenvalue(alpha, beta), expect, 1e-9);
}

TEST(Lanczos, DiagonalMatrixExactValue) {
  Coo<double> coo(50, 50);
  for (index_t i = 0; i < 50; ++i) coo.add(i, i, 1.0 + i * 0.1);
  const auto a = std::make_shared<const Csr<double>>(
      Csr<double>::from_coo(std::move(coo)));
  const auto r = lanczos_max_eigenvalue(make_operator<double>(a), 100, 1e-12);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 1.0 + 49 * 0.1, 1e-6);
}

TEST(Lanczos, Poisson2dSpectrum) {
  // 5-point stencil on nx x ny: max eigenvalue
  //   4 - 2cos(pi nx/(nx+1)) - 2cos(pi ny/(ny+1)).
  const index_t nx = 12, ny = 12;
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(nx, ny));
  const auto r = lanczos_max_eigenvalue(make_operator<double>(a), 200, 1e-11);
  const double expect = 4.0 - 2.0 * std::cos(M_PI * nx / (nx + 1.0)) -
                        2.0 * std::cos(M_PI * ny / (ny + 1.0));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, expect, 1e-5);
}

TEST(Lanczos, PermutedPjdsBasisGivesSameEigenvalue) {
  // Eigenvalues are basis-independent: Lanczos on P·A·Pᵀ must agree with
  // Lanczos on A — the HMEp eigensolver use case.
  GenConfig cfg;
  cfg.scale = 4096;
  auto hmep = make_hmep<double>(cfg);
  // Symmetrize (Lanczos needs symmetry): A := (A + Aᵀ) via add_symmetric.
  Coo<double> coo(hmep.n_rows, hmep.n_cols);
  for (index_t i = 0; i < hmep.n_rows; ++i)
    for (offset_t k = hmep.row_ptr[static_cast<std::size_t>(i)];
         k < hmep.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = hmep.col_idx[static_cast<std::size_t>(k)];
      if (c >= i)
        coo.add_symmetric(i, c, hmep.val[static_cast<std::size_t>(k)]);
    }
  const auto sym = std::make_shared<const Csr<double>>(
      Csr<double>::from_coo(std::move(coo)));

  formats::PlanOptions opt;
  opt.permute_columns = PermuteColumns::yes;
  const auto r_csr =
      lanczos_max_eigenvalue(make_operator<double>(sym), 300, 1e-10);
  const auto r_pjds = lanczos_max_eigenvalue(
      make_operator<double>(formats::registry<double>(), "pjds", *sym, opt),
      300, 1e-10);
  EXPECT_TRUE(r_csr.converged);
  EXPECT_TRUE(r_pjds.converged);
  EXPECT_NEAR(r_csr.eigenvalue, r_pjds.eigenvalue,
              1e-4 * std::abs(r_csr.eigenvalue));
}

TEST(Operator, RejectsShortVectors) {
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(4, 4));
  const auto op = make_operator<double>(a);
  std::vector<double> x(8), y(16);
  EXPECT_THROW(op.apply(std::span<const double>(x), std::span<double>(y)),
               Error);
}

TEST(Operator, RowSortedPlanRequiresPermutedColumns) {
  // A plan that sorts rows without relabeling the columns iterates in a
  // mixed basis; the operator factory must reject it.
  const auto a = make_poisson2d<double>(4, 4);
  formats::PlanOptions opt;
  opt.permute_columns = PermuteColumns::no;
  const std::shared_ptr<const formats::FormatPlan<double>> plan =
      formats::registry<double>().build("pjds", a, opt);
  EXPECT_THROW(make_operator<double>(plan), Error);
}

}  // namespace
}  // namespace spmvm::solver

namespace spmvm::solver {
namespace {

TEST(TridiagMin, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  const double alpha[] = {2.0, 2.0};
  const double beta[] = {1.0};
  EXPECT_NEAR(tridiag_min_eigenvalue(alpha, beta), 1.0, 1e-9);
}

TEST(TridiagMin, LaplacianChain) {
  const int n = 10;
  std::vector<double> alpha(n, 2.0), beta(n - 1, -1.0);
  const double expect = 2.0 - 2.0 * std::cos(M_PI / (n + 1));
  EXPECT_NEAR(tridiag_min_eigenvalue(alpha, beta), expect, 1e-8);
}

TEST(LanczosMin, Poisson2dSmallestEigenvalue) {
  const index_t nx = 10, ny = 10;
  const auto a = std::make_shared<const Csr<double>>(
      make_poisson2d<double>(nx, ny));
  const auto r =
      lanczos_min_eigenvalue(make_operator<double>(a), 300, 1e-11);
  const double expect = 4.0 - 2.0 * std::cos(M_PI / (nx + 1.0)) -
                        2.0 * std::cos(M_PI / (ny + 1.0));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, expect, 1e-5);
}

TEST(LanczosMin, ConditionNumberOfSpdSystem) {
  // kappa = lambda_max / lambda_min of a banded SPD matrix must be
  // finite and > 1 — the quantity that governs CG iteration counts.
  const auto a = std::make_shared<const Csr<double>>(
      make_banded<double>(200, 4));
  const auto op = make_operator<double>(a);
  const auto hi = lanczos_max_eigenvalue(op, 300, 1e-10);
  const auto lo = lanczos_min_eigenvalue(op, 300, 1e-10);
  ASSERT_TRUE(hi.converged);
  ASSERT_TRUE(lo.converged);
  EXPECT_GT(lo.eigenvalue, 0.0);  // SPD
  EXPECT_GT(hi.eigenvalue, lo.eigenvalue);
}

}  // namespace
}  // namespace spmvm::solver
