#include "core/spmmv.hpp"

#include <gtest/gtest.h>

#include <span>
#include <tuple>

#include "exec/engine.hpp"
#include "formats/registry.hpp"
#include "perfmodel/balance.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

using spmvm::testing::random_csr;
using spmvm::testing::random_vector;

class SpmmvSweep
    : public ::testing::TestWithParam<std::tuple<int /*k*/, int /*threads*/>> {
};

TEST_P(SpmmvSweep, CsrBlockEqualsRepeatedSpmv) {
  const auto& [k, threads] = GetParam();
  const index_t n = 120;
  const auto a = random_csr<double>(n, n, 0, 10, 1);
  const auto xblk = random_vector<double>(n * k, 2);
  std::vector<double> yblk(static_cast<std::size_t>(n) * k);
  spmmv(a, std::span<const double>(xblk), std::span<double>(yblk), k,
        threads);

  for (int v = 0; v < k; ++v) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i)
      x[static_cast<std::size_t>(i)] =
          xblk[static_cast<std::size_t>(i) * k + v];
    const auto yref = testing::reference_spmv(a, x);
    for (index_t i = 0; i < n; ++i)
      ASSERT_NEAR(yblk[static_cast<std::size_t>(i) * k + v],
                  yref[static_cast<std::size_t>(i)], 1e-12)
          << "vector " << v << " row " << i;
  }
}

TEST_P(SpmmvSweep, PjdsBlockMatchesCsrBlock) {
  const auto& [k, threads] = GetParam();
  const index_t n = 96;
  const auto a = random_csr<double>(n, n, 1, 8, 3);
  PjdsOptions opt;
  opt.permute_columns = PermuteColumns::no;
  const auto p = Pjds<double>::from_csr(a, opt);

  const auto xblk = random_vector<double>(n * k, 4);
  std::vector<double> y_csr(static_cast<std::size_t>(n) * k);
  std::vector<double> y_perm(static_cast<std::size_t>(n) * k);
  spmmv(a, std::span<const double>(xblk), std::span<double>(y_csr), k);
  spmmv(p, std::span<const double>(xblk), std::span<double>(y_perm), k,
        threads);
  // Un-permute the row blocks.
  for (index_t r = 0; r < n; ++r) {
    const index_t orig = p.perm.old_of(r);
    for (int v = 0; v < k; ++v)
      ASSERT_NEAR(y_perm[static_cast<std::size_t>(r) * k + v],
                  y_csr[static_cast<std::size_t>(orig) * k + v], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, SpmmvSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 4)));

TEST(Spmmv, KOneMatchesSingleVectorKernel) {
  const auto a = random_csr<double>(80, 80, 0, 7, 5);
  const auto x = random_vector<double>(80, 6);
  std::vector<double> y1(80), y2(80);
  spmmv(a, std::span<const double>(x), std::span<double>(y1), 1);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y1,
                                       1e-13);
  (void)y2;
}

TEST(Spmmv, BalanceImprovesWithBlockWidth) {
  // Eq. 1 amortization: the matrix term divides by k.
  const double b1 = spmmv_code_balance(8, 0.2, 20.0, 1);
  const double b4 = spmmv_code_balance(8, 0.2, 20.0, 4);
  const double b16 = spmmv_code_balance(8, 0.2, 20.0, 16);
  EXPECT_GT(b1, b4);
  EXPECT_GT(b4, b16);
  // k = 1 equals the single-vector balance.
  EXPECT_DOUBLE_EQ(b1, perfmodel::code_balance(8, 0.2, 20.0));
  // The limit is the vector traffic alone.
  EXPECT_NEAR(spmmv_code_balance(8, 0.2, 20.0, 1000000),
              (8 * 0.2 + 16.0 / 20.0) / 2.0, 1e-4);
}

TEST(Spmmv, RejectsBadBlocks) {
  const auto a = random_csr<double>(10, 10, 1, 2, 7);
  std::vector<double> x(20), y(20);
  EXPECT_THROW(
      spmmv(a, std::span<const double>(x), std::span<double>(y), 0), Error);
  EXPECT_THROW(
      spmmv(a, std::span<const double>(x), std::span<double>(y), 4), Error);
}

/// Bind + one block product on `backend`, original basis, deterministic
/// opts (mirrors test_exec_backends::product for k vectors).
std::vector<double> block_product(exec::Engine<double>& eng,
                                  const char* backend, const Csr<double>& a,
                                  const char* format,
                                  const std::vector<double>& xblk, int k) {
  formats::PlanOptions opts;
  opts.permute_columns = PermuteColumns::no;
  opts.probe = false;
  const auto bound = eng.bind(backend, a, format, opts, {});
  std::vector<double> y(static_cast<std::size_t>(a.n_rows) *
                            static_cast<std::size_t>(k),
                        -1.0);
  bound->apply_block(std::span<const double>(xblk), std::span<double>(y), k);
  return y;
}

class SpmmvBackendSweep : public ::testing::TestWithParam<int /*k*/> {};

TEST_P(SpmmvBackendSweep, BitIdenticalAcrossBackendsForEveryFormat) {
  const int k = GetParam();
  const auto a = random_csr<double>(64, 64, 0, 9, 11);
  const auto xblk = random_vector<double>(64 * k, 12);

  exec::Engine<double> eng;
  for (const formats::FormatInfo& info : formats::registry<double>().list()) {
    SCOPED_TRACE(std::string(info.name) + " k=" + std::to_string(k));
    const auto host = block_product(eng, "host", a, info.name, xblk, k);
    const auto sim = block_product(eng, "gpusim", a, info.name, xblk, k);
    const auto hyb = block_product(eng, "hybrid", a, info.name, xblk, k);
    for (std::size_t i = 0; i < host.size(); ++i) {
      EXPECT_EQ(host[i], sim[i]) << "entry " << i;
      EXPECT_EQ(host[i], hyb[i]) << "entry " << i;
    }
    // The batched block equals k individual products bit-for-bit: every
    // backend routes all widths through the same per-row kernel.
    for (int v = 0; v < k; ++v) {
      std::vector<double> xv(64);
      for (std::size_t i = 0; i < xv.size(); ++i)
        xv[i] = xblk[i * static_cast<std::size_t>(k) +
                     static_cast<std::size_t>(v)];
      const auto yv = block_product(eng, "host", a, info.name, xv, 1);
      for (std::size_t i = 0; i < yv.size(); ++i)
        EXPECT_EQ(host[i * static_cast<std::size_t>(k) +
                       static_cast<std::size_t>(v)],
                  yv[i])
            << "vector " << v << " row " << i;
    }
  }
}

TEST_P(SpmmvBackendSweep, EmptyRowsAtSplitBoundary) {
  // 8 rows, rows 3–5 empty; a 50% nnz split lands inside the empty
  // band, so a hybrid part ends (and the other begins) on empty rows
  // (same shape as test_exec_backends::HybridEmptyRowsAtSplitBoundary).
  const int k = GetParam();
  Csr<double> a;
  a.n_rows = 8;
  a.n_cols = 8;
  a.row_ptr = {0, 2, 4, 6, 6, 6, 6, 9, 12};
  a.col_idx = {0, 1, 1, 2, 2, 3, 0, 4, 7, 1, 5, 6};
  a.val = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  a.validate();
  const auto xblk = random_vector<double>(8 * k, 13);

  exec::Engine<double> eng;
  const auto host = block_product(eng, "host", a, "csr", xblk, k);
  const auto sim = block_product(eng, "gpusim", a, "csr", xblk, k);
  for (std::size_t i = 0; i < host.size(); ++i)
    EXPECT_EQ(host[i], sim[i]) << "entry " << i;
  for (const double share : {0.0, 0.5, 1.0}) {
    SCOPED_TRACE(share);
    exec::LaunchOptions launch;
    launch.device_share = share;
    const auto bound = eng.bind("hybrid", a, "csr", {}, launch);
    std::vector<double> y(static_cast<std::size_t>(8 * k), -1.0);
    bound->apply_block(std::span<const double>(xblk), std::span<double>(y),
                       k);
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(y[i], host[i]) << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, SpmmvBackendSweep,
                         ::testing::Values(1, 2, 8));

TEST(Spmmv, RejectsNonPositiveKForEveryFormat) {
  // The k-interleaved stride contract (x[i*k + v]) must be asserted
  // before any indexing: k <= 0 throws instead of aliasing rows.
  const auto a = random_csr<double>(12, 12, 1, 3, 8);
  const auto p = Pjds<double>::from_csr(a);
  std::vector<double> x(24), y(24);
  for (int k : {0, -1, -7}) {
    EXPECT_THROW(
        spmmv(a, std::span<const double>(x), std::span<double>(y), k), Error);
    EXPECT_THROW(
        spmmv(p, std::span<const double>(x), std::span<double>(y), k), Error);
  }
}

}  // namespace
}  // namespace spmvm
