// Cross-format property suite: every storage format must produce the same
// product as the dense reference, across matrix shapes, value types and
// thread counts (parameterized sweep).
#include "sparse/spmv_host.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spmvm {
namespace {

struct ShapeParam {
  index_t n_rows;
  index_t n_cols;
  index_t min_len;
  index_t max_len;
  std::uint64_t seed;
};

class SpmvAllFormats
    : public ::testing::TestWithParam<std::tuple<ShapeParam, int>> {};

TEST_P(SpmvAllFormats, EveryFormatMatchesReference) {
  const auto& [shape, threads] = GetParam();
  const auto a = testing::random_csr<double>(shape.n_rows, shape.n_cols,
                                             shape.min_len, shape.max_len,
                                             shape.seed);
  const auto x = testing::random_vector<double>(shape.n_cols, shape.seed + 1);
  const auto ref = testing::reference_spmv(a, x);
  const auto n = static_cast<std::size_t>(shape.n_rows);

  {
    std::vector<double> y(n);
    spmv(a, std::span<const double>(x), std::span<double>(y), threads);
    testing::expect_vectors_near<double>(ref, y, 1e-12);
  }
  {
    const auto e = Ellpack<double>::from_csr(a, 32);
    std::vector<double> y(n);
    spmv_ellpack(e, std::span<const double>(x), std::span<double>(y), threads);
    testing::expect_vectors_near<double>(ref, y, 1e-12);
    std::vector<double> yr(n);
    spmv_ellpack_r(e, std::span<const double>(x), std::span<double>(yr),
                   threads);
    testing::expect_vectors_near<double>(ref, yr, 1e-12);
  }
  if (shape.n_rows == shape.n_cols) {
    const auto j = Jds<double>::from_csr(a, PermuteColumns::yes);
    std::vector<double> x_perm(n), y_perm(n), y(n);
    j.perm.to_permuted<double>(x, x_perm);
    spmv(j, std::span<const double>(x_perm), std::span<double>(y_perm));
    j.perm.from_permuted<double>(y_perm, y);
    testing::expect_vectors_near<double>(ref, y, 1e-12);
  }
  {
    const auto s = SlicedEll<double>::from_csr(a, 16);
    std::vector<double> y(n);
    spmv(s, std::span<const double>(x), std::span<double>(y), threads);
    testing::expect_vectors_near<double>(ref, y, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmvAllFormats,
    ::testing::Combine(
        ::testing::Values(
            ShapeParam{1, 1, 1, 1, 1},        // minimal
            ShapeParam{17, 17, 0, 3, 2},      // with empty rows
            ShapeParam{64, 64, 4, 4, 3},      // constant row length
            ShapeParam{100, 80, 0, 10, 4},    // rectangular
            ShapeParam{33, 47, 1, 20, 5},     // wider than tall rows
            ShapeParam{256, 256, 0, 32, 6}),  // larger square
        ::testing::Values(1, 4)));

TEST(SpmvCsr, AxpbyComposesCorrectly) {
  const auto a = testing::random_csr<double>(50, 50, 1, 6, 9);
  const auto x = testing::random_vector<double>(50, 10);
  auto y = testing::random_vector<double>(50, 11);
  const auto y0 = y;
  spmv_axpby(a, std::span<const double>(x), std::span<double>(y), 2.0, -0.5);
  const auto ax = testing::reference_spmv(a, x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], -0.5 * y0[i] + 2.0 * ax[i], 1e-12);
}

TEST(SpmvCsr, AxpbyBetaZeroOverwrites) {
  const auto a = testing::random_csr<double>(30, 30, 1, 4, 12);
  const auto x = testing::random_vector<double>(30, 13);
  std::vector<double> y(30, 1e300);  // must be ignored with beta = 0...
  // beta=0 multiplies: 0*1e300 = 0, still finite.
  spmv_axpby(a, std::span<const double>(x), std::span<double>(y), 1.0, 0.0);
  testing::expect_vectors_near<double>(testing::reference_spmv(a, x), y,
                                       1e-12);
}

TEST(SpmvCsr, RejectsShortVectors) {
  const auto a = testing::random_csr<double>(10, 10, 1, 2, 14);
  std::vector<double> x(5), y(10);
  EXPECT_THROW(
      spmv(a, std::span<const double>(x), std::span<double>(y)), Error);
  std::vector<double> x2(10), y2(5);
  EXPECT_THROW(
      spmv(a, std::span<const double>(x2), std::span<double>(y2)), Error);
}

TEST(SpmvSlicedEll, AxpbyComposesCorrectly) {
  const auto a = testing::random_csr<double>(70, 70, 0, 9, 21);
  const auto s = SlicedEll<double>::from_csr(a, 16);  // σ = 1: plain basis
  const auto x = testing::random_vector<double>(70, 22);
  for (int threads : {1, 4}) {
    auto y = testing::random_vector<double>(70, 23);
    const auto y0 = y;
    spmv_axpby(s, std::span<const double>(x), std::span<double>(y), 2.0, -0.5,
               threads);
    const auto ax = testing::reference_spmv(a, x);
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], -0.5 * y0[i] + 2.0 * ax[i], 1e-12)
          << "threads=" << threads;
  }
}

TEST(SpmvSlicedEll, AxpbyMatchesTwoPassOnSortedFormat) {
  const auto a = testing::random_csr<double>(90, 90, 0, 14, 24);
  const auto s =
      SlicedEll<double>::from_csr(a, 8, /*sort_window=*/90,
                                  PermuteColumns::yes);
  const auto x = testing::random_vector<double>(90, 25);
  std::vector<double> ax(90);
  spmv(s, std::span<const double>(x), std::span<double>(ax));
  auto y = testing::random_vector<double>(90, 26);
  const auto y0 = y;
  spmv_axpby(s, std::span<const double>(x), std::span<double>(y), 1.5, 0.25);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], 0.25 * y0[i] + 1.5 * ax[i], 1e-12);
}

TEST(SpmvFloat, SinglePrecisionWithinTolerance) {
  const auto a = testing::random_csr<float>(80, 80, 1, 10, 15);
  const auto x = testing::random_vector<float>(80, 16);
  const auto ref = testing::reference_spmv(a, x);
  const auto e = Ellpack<float>::from_csr(a, 32);
  std::vector<float> y(80);
  spmv_ellpack_r(e, std::span<const float>(x), std::span<float>(y));
  testing::expect_vectors_near<float>(ref, y, 1e-5);
}

}  // namespace
}  // namespace spmvm
