#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(Stats, MeanOfKnownSample) {
  const double xs[] = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean_of(std::span<const double>{}), 0.0);
}

TEST(Stats, StddevOfKnownSample) {
  const double xs[] = {2, 4, 4, 4, 5, 5, 7, 9};
  // Sample stddev with n-1 denominator: sqrt(32/7).
  EXPECT_NEAR(stddev_of(xs), 2.13809, 1e-4);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const double xs[] = {42.0};
  EXPECT_DOUBLE_EQ(stddev_of(xs), 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  const double xs[] = {1, 10, 100};
  EXPECT_NEAR(geomean_of(xs), 10.0, 1e-9);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const double xs[] = {1.0, 0.0};
  EXPECT_THROW(geomean_of(xs), Error);
}

TEST(Stats, PercentileInterpolates) {
  const double xs[] = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.125), 5.0);
}

TEST(Stats, SummaryFields) {
  const double xs[] = {5, 1, 3, 2, 4};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, LinearSlopeOfExactLine) {
  const double x[] = {1, 2, 3, 4};
  const double y[] = {3, 5, 7, 9};  // slope 2
  EXPECT_NEAR(linear_slope(x, y), 2.0, 1e-12);
}

TEST(Stats, LinearSlopeRejectsConstantX) {
  const double x[] = {1, 1, 1};
  const double y[] = {1, 2, 3};
  EXPECT_THROW(linear_slope(x, y), Error);
}

}  // namespace
}  // namespace spmvm
