// Concurrency suite for the persistent ThreadPool, the nnz-balanced
// scheduler, and determinism of the host kernels built on top of them.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sparse/pjds.hpp"
#include "sparse/pjds_spmv.hpp"
#include "matgen/generators.hpp"
#include "sparse/sliced_ell.hpp"
#include "sparse/spmv_host.hpp"
#include "util/parallel.hpp"

namespace spmvm {
namespace {

TEST(ThreadPool, RunExecutesEveryPartExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  ThreadPool::instance().run(64, [&](int p) { hits[p]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedRunExecutesInline) {
  std::atomic<int> outer{0}, inner{0};
  ThreadPool::instance().run(4, [&](int) {
    EXPECT_TRUE(ThreadPool::in_task());
    outer++;
    ThreadPool::instance().run(4, [&](int) {
      // Nested parallelism degrades to the serial inline path.
      EXPECT_TRUE(ThreadPool::in_task());
      inner++;
    });
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_EQ(inner.load(), 16);
  EXPECT_FALSE(ThreadPool::in_task());
}

TEST(ThreadPool, NestedParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(256);
  for (auto& h : hits) h = 0;
  parallel_for(4, 4, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o)
      parallel_for(64, 4, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[o * 64 + i]++;
      });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(ThreadPool::instance().run(
                   8,
                   [&](int p) {
                     if (p == 3) throw std::runtime_error("worker boom");
                   }),
               std::runtime_error);
  // The pool must stay fully usable after a throwing task.
  std::atomic<int> total{0};
  ThreadPool::instance().run(8, [&](int) { total++; });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, ConcurrentExternalSubmissionsAreSerializedSafely) {
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 5000;
  std::vector<std::vector<double>> results(kThreads);
  std::vector<std::thread> callers;
  for (int t = 0; t < kThreads; ++t)
    callers.emplace_back([&results, t] {
      std::vector<double>& out = results[t];
      out.assign(kN, 0.0);
      parallel_for(kN, 4, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          out[i] = static_cast<double>(i) * (t + 1);
      });
    });
  for (auto& c : callers) c.join();
  for (int t = 0; t < kThreads; ++t)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(results[t][i], static_cast<double>(i) * (t + 1));
}

TEST(ThreadPool, ExportsActivityGauges) {
  auto& g_active = obs::gauge("pool.active_workers");
  auto& g_queued = obs::gauge("pool.queued_parts");

  // Each part spins until a second part has *started*: the caller's
  // part can only be released by a pool worker entering one, so at
  // that moment the active-workers gauge must read >= 1.
  std::atomic<int> inside{0};
  std::mutex mx;
  double active_seen = 0.0;
  ThreadPool::instance().run(4, [&](int) {
    inside.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (inside.load() < 2 && std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
    std::lock_guard<std::mutex> lk(mx);
    active_seen = std::max(active_seen, g_active.value());
  });
  EXPECT_GE(active_seen, 1.0);

  // The last claim zeroes the queued-parts gauge, and every worker
  // re-parks after the broadcast, returning the active gauge to zero.
  EXPECT_DOUBLE_EQ(g_queued.value(), 0.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (g_active.value() != 0.0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_DOUBLE_EQ(g_active.value(), 0.0);
}

TEST(ParallelFor, NoDegenerateChunksWhenOversubscribed) {
  // n = 3 with 16 requested threads must produce exactly 3 size-1
  // chunks — no empty trailing parts from over-reserved workers.
  std::atomic<int> calls{0}, covered{0};
  parallel_for(3, 16, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(e - b, 1u);
    calls++;
    covered += static_cast<int>(e - b);
  });
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(covered.load(), 3);
}

TEST(BalancedPartition, BalancesSkewedPowerLawRows) {
  const auto a = make_powerlaw<double>(4096, 6.0, 512, 0xFEED);
  const std::size_t parts = 8;
  const auto bounds = balanced_partition(
      std::span<const offset_t>(a.row_ptr), parts);
  ASSERT_EQ(bounds.size(), parts + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), static_cast<std::size_t>(a.n_rows));
  const offset_t total = a.nnz();
  const offset_t ideal = total / static_cast<offset_t>(parts);
  const offset_t max_row = a.max_row_len();
  offset_t covered = 0;
  for (std::size_t t = 0; t < parts; ++t) {
    ASSERT_LE(bounds[t], bounds[t + 1]);
    const offset_t mass = a.row_ptr[bounds[t + 1]] - a.row_ptr[bounds[t]];
    covered += mass;
    // A part may exceed the ideal share by at most one boundary row.
    EXPECT_LE(mass, ideal + max_row)
        << "part " << t << " rows [" << bounds[t] << ", " << bounds[t + 1]
        << ")";
  }
  EXPECT_EQ(covered, total);
}

TEST(BalancedPartition, EmptyRowsFallBackToEvenIndexSplit) {
  const std::vector<offset_t> offsets(101, 0);  // 100 rows, all empty
  const auto bounds =
      balanced_partition(std::span<const offset_t>(offsets), 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 100u);
  for (std::size_t t = 0; t < 4; ++t) EXPECT_EQ(bounds[t + 1] - bounds[t], 25u);
}

// Disjoint row ranges make threaded spMVM bitwise deterministic: each
// row's accumulation order is independent of the partition, so 1-, 2-
// and 8-thread runs must agree to the last bit.
class SpmvDeterminism : public ::testing::Test {
 protected:
  static bool bitwise_equal(const std::vector<double>& a,
                            const std::vector<double>& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
  }
};

TEST_F(SpmvDeterminism, CsrBitwiseAcrossThreadCounts) {
  const auto a = make_powerlaw<double>(2000, 8.0, 300, 0xABCD);
  std::vector<double> x(static_cast<std::size_t>(a.n_cols));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.25 + static_cast<double>(i % 17) * 0.125;
  auto run = [&](int threads) {
    std::vector<double> y(static_cast<std::size_t>(a.n_rows));
    spmv(a, std::span<const double>(x), std::span<double>(y), threads);
    return y;
  };
  const auto y1 = run(1);
  EXPECT_TRUE(bitwise_equal(y1, run(2)));
  EXPECT_TRUE(bitwise_equal(y1, run(8)));
}

TEST_F(SpmvDeterminism, SlicedEllBitwiseAcrossThreadCounts) {
  const auto a = make_powerlaw<double>(2000, 8.0, 300, 0xBEEF);
  const auto s = SlicedEll<double>::from_csr(a, 16);
  std::vector<double> x(static_cast<std::size_t>(a.n_cols));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 / (1.0 + static_cast<double>(i % 13));
  auto run = [&](int threads) {
    std::vector<double> y(static_cast<std::size_t>(a.n_rows));
    spmv(s, std::span<const double>(x), std::span<double>(y), threads);
    return y;
  };
  const auto y1 = run(1);
  EXPECT_TRUE(bitwise_equal(y1, run(2)));
  EXPECT_TRUE(bitwise_equal(y1, run(8)));
}

TEST_F(SpmvDeterminism, PjdsBitwiseAcrossThreadCounts) {
  const auto a = make_powerlaw<double>(2000, 8.0, 300, 0xCAFE);
  PjdsOptions opt;
  opt.permute_columns = PermuteColumns::no;
  const auto p = Pjds<double>::from_csr(a, opt);
  std::vector<double> x(static_cast<std::size_t>(a.n_cols));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.5 + static_cast<double>(i % 11) * 0.0625;
  auto run = [&](int threads) {
    std::vector<double> y(static_cast<std::size_t>(a.n_rows));
    spmv(p, std::span<const double>(x), std::span<double>(y), threads);
    return y;
  };
  const auto y1 = run(1);
  EXPECT_TRUE(bitwise_equal(y1, run(2)));
  EXPECT_TRUE(bitwise_equal(y1, run(8)));
}

}  // namespace
}  // namespace spmvm
