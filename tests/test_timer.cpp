#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "util/error.hpp"

namespace spmvm {
namespace {

TEST(Timer, MeasureSecondsRejectsZeroReps) {
  EXPECT_THROW(measure_seconds(0.0, 0, [] {}), Error);
  EXPECT_THROW(measure_seconds(0.0, -3, [] {}), Error);
}

TEST(Timer, MeasureSecondsRejectsNegativeDuration) {
  EXPECT_THROW(measure_seconds(-1.0, 1, [] {}), Error);
}

TEST(Timer, MeasureStatsRejectsZeroReps) {
  EXPECT_THROW(measure_seconds_stats(0.0, 0, [] {}), Error);
}

TEST(Timer, MeasureStatsSingleRepHasZeroStddev) {
  const MeasureStats s = measure_seconds_stats(0.0, 1, [] {});
  EXPECT_EQ(s.reps, 1);
  EXPECT_EQ(s.stddev_seconds, 0.0);  // exactly 0, never NaN
  EXPECT_FALSE(std::isnan(s.stddev_seconds));
  EXPECT_DOUBLE_EQ(s.min_seconds, s.max_seconds);
  EXPECT_DOUBLE_EQ(s.mean_seconds, s.median_seconds);
}

TEST(Timer, MeasureStatsRunsAtLeastMinReps) {
  std::atomic<int> calls{0};
  const MeasureStats s = measure_seconds_stats(0.0, 5, [&] { ++calls; });
  EXPECT_GE(s.reps, 5);
  // One extra call for the warm-up run.
  EXPECT_EQ(calls.load(), s.reps + 1);
}

TEST(Timer, MeasureStatsOrderingInvariants) {
  volatile double sink = 0.0;
  const MeasureStats s = measure_seconds_stats(0.0, 8, [&] {
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) acc += static_cast<double>(i) * 1e-3;
    sink = acc;
  });
  EXPECT_GE(s.min_seconds, 0.0);
  EXPECT_LE(s.min_seconds, s.median_seconds);
  EXPECT_LE(s.median_seconds, s.max_seconds);
  EXPECT_GT(s.mean_seconds, 0.0);
  EXPECT_GE(s.stddev_seconds, 0.0);
}

TEST(Timer, MeasureSecondsAveragesOverReps) {
  std::atomic<int> calls{0};
  const double avg = measure_seconds(0.0, 3, [&] { ++calls; });
  EXPECT_GE(avg, 0.0);
  EXPECT_GE(calls.load(), 4);  // 3 measured + warm-up
}

}  // namespace
}  // namespace spmvm
