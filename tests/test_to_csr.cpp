// Round-trip property suite: from_csr ∘ to_csr must be the identity for
// every storage format, across matrix shapes and build parameters.
#include "sparse/to_csr.hpp"

#include <gtest/gtest.h>

#include "matgen/suite.hpp"
#include "test_helpers.hpp"

namespace spmvm {
namespace {

using spmvm::testing::random_csr;

struct Shape {
  index_t rows;
  index_t cols;
  index_t min_len;
  index_t max_len;
  std::uint64_t seed;
};

class RoundTrip : public ::testing::TestWithParam<Shape> {
 protected:
  Csr<double> matrix() const {
    const auto& p = GetParam();
    return random_csr<double>(p.rows, p.cols, p.min_len, p.max_len, p.seed);
  }
};

TEST_P(RoundTrip, Ellpack) {
  const auto a = matrix();
  EXPECT_TRUE(structurally_equal(a, to_csr(Ellpack<double>::from_csr(a, 32))));
}

TEST_P(RoundTrip, JdsRowOnly) {
  const auto a = matrix();
  const auto j = Jds<double>::from_csr(a, PermuteColumns::no);
  EXPECT_TRUE(structurally_equal(a, to_csr(j, PermuteColumns::no)));
}

TEST_P(RoundTrip, JdsSymmetric) {
  const auto& p = GetParam();
  if (p.rows != p.cols) GTEST_SKIP() << "symmetric permutation needs square";
  const auto a = matrix();
  const auto j = Jds<double>::from_csr(a, PermuteColumns::yes);
  EXPECT_TRUE(structurally_equal(a, to_csr(j, PermuteColumns::yes)));
}

TEST_P(RoundTrip, SlicedEllUnsorted) {
  const auto a = matrix();
  const auto s = SlicedEll<double>::from_csr(a, 16);
  EXPECT_TRUE(structurally_equal(a, to_csr(s, PermuteColumns::no)));
}

TEST_P(RoundTrip, SlicedEllSorted) {
  const auto a = matrix();
  const auto s = SlicedEll<double>::from_csr(a, 16, a.n_rows,
                                             PermuteColumns::no);
  EXPECT_TRUE(structurally_equal(a, to_csr(s, PermuteColumns::no)));
}

TEST_P(RoundTrip, PjdsRowOnly) {
  const auto a = matrix();
  PjdsOptions opt;
  opt.permute_columns = PermuteColumns::no;
  EXPECT_TRUE(structurally_equal(a, to_csr(Pjds<double>::from_csr(a, opt))));
}

TEST_P(RoundTrip, PjdsSymmetric) {
  const auto& p = GetParam();
  if (p.rows != p.cols) GTEST_SKIP() << "symmetric permutation needs square";
  const auto a = matrix();
  PjdsOptions opt;
  opt.permute_columns = PermuteColumns::yes;
  EXPECT_TRUE(structurally_equal(a, to_csr(Pjds<double>::from_csr(a, opt))));
}

TEST_P(RoundTrip, Bellpack) {
  const auto a = matrix();
  EXPECT_TRUE(
      structurally_equal(a, to_csr(Bellpack<double>::from_csr(a, 3, 4))));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTrip,
    ::testing::Values(Shape{1, 1, 1, 1, 1},      //
                      Shape{33, 33, 0, 5, 2},    // empty rows, odd size
                      Shape{64, 64, 4, 4, 3},    // constant length
                      Shape{100, 70, 0, 12, 4},  // rectangular
                      Shape{257, 257, 0, 40, 5}  // wide spread
                      ),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols) + "_len" +
             std::to_string(info.param.max_len);
    });

TEST(RoundTripPaper, AllFiveMatrices) {
  for (const char* name : {"DLR1", "DLR2", "HMEp", "sAMG", "UHBR"}) {
    const auto a = make_named(name, 512).matrix;
    SCOPED_TRACE(name);
    EXPECT_TRUE(structurally_equal(a, to_csr(Pjds<double>::from_csr(a))));
    EXPECT_TRUE(
        structurally_equal(a, to_csr(Ellpack<double>::from_csr(a, 32))));
  }
}

}  // namespace
}  // namespace spmvm
