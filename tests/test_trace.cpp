// Tracing layer: span nesting, multi-thread collection (exercised under
// the tsan-concurrency preset), and the disabled-mode zero-allocation
// guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "dist/timeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

using namespace spmvm;

namespace {

// Allocation counter for the zero-allocation check: every operator new
// in this test binary bumps it.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

/// Scoped enable/disable that restores the previous state and clears
/// recorded spans so tests stay independent.
class ScopedTracing {
 public:
  explicit ScopedTracing(bool on) : prev_(obs::tracing_enabled()) {
    obs::clear_trace();
    obs::set_tracing(on);
  }
  ~ScopedTracing() {
    obs::set_tracing(prev_);
    obs::clear_trace();
  }

 private:
  bool prev_;
};

TEST(Trace, DisabledSpanRecordsNothingAndAllocatesNothing) {
  ScopedTracing off(false);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    SPMVM_TRACE_SPAN("test/disabled", 128);
  }
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_TRUE(obs::collect().empty());
}

TEST(Trace, RecordsCompletedSpans) {
  ScopedTracing on(true);
  {
    SPMVM_TRACE_SPAN("test/outer", 64);
  }
  const auto events = obs::collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/outer");
  EXPECT_EQ(events[0].bytes, 64u);
  EXPECT_GE(events[0].t1_ns, events[0].t0_ns);
}

TEST(Trace, NestingDepthIsRecorded) {
  ScopedTracing on(true);
  {
    SPMVM_TRACE_SPAN("test/a");
    {
      SPMVM_TRACE_SPAN("test/b");
      {
        SPMVM_TRACE_SPAN("test/c");
      }
    }
  }
  const auto events = obs::collect();
  ASSERT_EQ(events.size(), 3u);
  for (const auto& e : events) {
    const std::string name = e.name;
    if (name == "test/a") {
      EXPECT_EQ(e.depth, 0);
    } else if (name == "test/b") {
      EXPECT_EQ(e.depth, 1);
    } else if (name == "test/c") {
      EXPECT_EQ(e.depth, 2);
    }
  }
}

TEST(Trace, DepthUnwindsAfterGuardsClose) {
  ScopedTracing on(true);
  {
    SPMVM_TRACE_SPAN("test/first");
  }
  {
    SPMVM_TRACE_SPAN("test/second");
  }
  for (const auto& e : obs::collect()) EXPECT_EQ(e.depth, 0);
}

TEST(Trace, CapBoundsPerThreadBufferAndCountsDrops) {
  ScopedTracing on(true);
  const std::size_t prev_cap = obs::trace_cap();
  obs::set_trace_cap(16);
  const std::uint64_t dropped0 =
      obs::counter("trace.dropped_spans").value();
  // Record on a fresh thread: its buffer starts empty, so exactly `cap`
  // spans land and the rest are counted as dropped.
  std::thread([] {
    for (int i = 0; i < 100; ++i) {
      SPMVM_TRACE_SPAN("test/capped");
    }
  }).join();
  obs::set_trace_cap(prev_cap);
  std::size_t capped = 0;
  for (const auto& e : obs::collect())
    if (std::string(e.name) == "test/capped") ++capped;
  EXPECT_EQ(capped, 16u);
  EXPECT_EQ(obs::counter("trace.dropped_spans").value() - dropped0, 84u);
}

TEST(Trace, SpanArgsAreAttached) {
  ScopedTracing on(true);
  {
    SPMVM_TRACE_SPAN_NAMED(span, "test/args");
    ASSERT_TRUE(span.active());
    span.set_arg("alpha", 2.5);
    span.set_arg("beta", -1.0);
    span.set_arg("dropped", 9.0);  // beyond kMaxArgs: ignored
    span.set_bytes(42);
  }
  const auto events = obs::collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].n_args, 2);
  EXPECT_STREQ(events[0].arg_name[0], "alpha");
  EXPECT_DOUBLE_EQ(events[0].arg_value[0], 2.5);
  EXPECT_STREQ(events[0].arg_name[1], "beta");
  EXPECT_DOUBLE_EQ(events[0].arg_value[1], -1.0);
  EXPECT_EQ(events[0].bytes, 42u);
}

TEST(Trace, MultiThreadRecordingCollectsAllSpans) {
  ScopedTracing on(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::set_thread_name("trace worker " + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        SPMVM_TRACE_SPAN("test/mt");
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto events = obs::collect();
  std::size_t mt_spans = 0;
  for (const auto& e : events)
    if (std::string(e.name) == "test/mt") ++mt_spans;
  EXPECT_EQ(mt_spans, static_cast<std::size_t>(kThreads) * kSpansPerThread);

  const auto threads_seen = obs::trace_threads();
  int named = 0;
  for (const auto& th : threads_seen)
    if (th.name.rfind("trace worker ", 0) == 0) ++named;
  EXPECT_GE(named, kThreads);
}

TEST(Trace, CollectWhileRecordingIsSafe) {
  // collect() and clear_trace() racing an active recorder: exercised for
  // the TSan preset. The recorder is bounded (not run-until-stopped) and
  // the collector clears between snapshots — otherwise, on a single CPU,
  // the recorder can fill its buffer faster than collect() drains it and
  // every snapshot copies + sorts an ever-growing vector.
  ScopedTracing on(true);
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    for (int i = 0; i < 100000; ++i) {
      if (stop.load(std::memory_order_relaxed)) break;
      SPMVM_TRACE_SPAN("test/race");
    }
  });
  for (int i = 0; i < 50; ++i) {
    const auto events = obs::collect();
    for (std::size_t k = 1; k < events.size(); ++k)
      EXPECT_LE(events[k - 1].t0_ns, events[k].t0_ns);  // sorted by start
    obs::clear_trace();
  }
  stop.store(true);
  recorder.join();
}

TEST(Trace, ScaleIntervalMatchesTimelineArithmetic) {
  // Edge cases of the shared Fig. 4 interval scaling.
  const auto full = obs::scale_interval(0.0, 1.0, 1.0, 72);
  EXPECT_EQ(full.c0, 0);
  EXPECT_EQ(full.c1, 71);
  const auto point = obs::scale_interval(0.5, 0.5, 1.0, 72);
  EXPECT_EQ(point.c0, point.c1);
  const auto inverted = obs::scale_interval(0.9, 0.1, 1.0, 72);
  EXPECT_EQ(inverted.c1, inverted.c0);  // clamped, never negative width
}

TEST(Trace, TimelineRenderUnchangedByPort) {
  // The exact golden layout Timeline::render produced before it was
  // ported onto obs::render_interval_rows.
  dist::Timeline tl;
  tl.add("thread 0", "gather", 0.0, 4e-6);
  tl.add("thread 1", "compute", 0.0, 1e-5);
  tl.add("thread 0", "wait", 4e-6, 1e-5);
  const std::string out = tl.render(40);
  std::vector<std::string> lines;
  std::size_t at = 0;
  while (at < out.size()) {
    const std::size_t nl = out.find('\n', at);
    lines.push_back(out.substr(at, nl - at));
    at = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("thread 0 |[", 0), 0u);
  EXPECT_EQ(lines[1].rfind("thread 1 |[", 0), 0u);
  EXPECT_NE(lines[2].find("10.0 us"), std::string::npos);
  EXPECT_EQ(lines[0].size(), lines[1].size());
}

TEST(Trace, EmptyTimelineRenders) {
  dist::Timeline tl;
  EXPECT_EQ(tl.render(), "(empty timeline)\n");
}

TEST(Trace, TimelineFromTraceBuildsActorRows) {
  ScopedTracing on(true);
  obs::set_thread_name("main thread");
  {
    SPMVM_TRACE_SPAN("phase/a");
  }
  {
    SPMVM_TRACE_SPAN("phase/b");
  }
  const auto tl =
      dist::timeline_from_trace(obs::collect(), obs::trace_threads());
  bool saw_a = false, saw_b = false;
  for (const auto& e : tl.events()) {
    EXPECT_EQ(e.actor, "main thread");
    if (e.label == "phase/a") saw_a = true;
    if (e.label == "phase/b") saw_b = true;
    EXPECT_GE(e.t0, 0.0);
    EXPECT_GE(e.t1, e.t0);
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  const std::string rendered = tl.render();
  EXPECT_NE(rendered.find("main thread"), std::string::npos);
}

}  // namespace
